package numeric

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file adds the supernodal numeric phase on top of the compiled
// SparseSymbolic schedule, in the spirit of SuperLU/CHOLMOD adapted to
// the up-looking row-LU of sparse.go:
//
//   - buildSupernodes — one-time detection of supernodes (maximal runs
//     of consecutive permuted rows whose U patterns are nested and whose
//     in-block L is dense), the supernode dependency DAG, and a
//     level-set schedule over it;
//
//   - SparseLU.RefactorSupernodal — numeric refactorization that
//     eliminates one supernode panel at a time: scatter the panel's rows
//     into dense work rows, apply each dependency supernode as a blocked
//     panel-panel update (contiguous float64 sweeps over the split re/im
//     planes — gather the update columns once, reuse each pivot row
//     across the whole panel), finish with a small dense in-panel
//     triangular factorization, and gather back into the CSR planes.
//     Per-position arithmetic and elimination order match the scalar
//     sweep exactly, so factors are bit-identical to RefactorReuse;
//
//   - SparseLU.RefactorParallel — the same elimination driven by a
//     level-set schedule across a caller-chosen worker count. Supernodes
//     within one level write disjoint factor rows, so any worker count
//     produces bit-identical factors;
//
//   - SparseLU.PartialRefactor — clone a base factorization and
//     re-eliminate only the rows transitively affected by a set of
//     touched rows (exact reachability over the static L patterns), for
//     fault deltas that break the SMW guards but not the factorization.
//
// A supernode here is a run [s, e) of permuted rows such that
//
//   (1) U(r) = U(r-1) \ {r-1} for every r in (s, e)   (nested U), and
//   (2) L(r) ⊇ {s, …, r-1}                            (dense in-block L),
//
// so all rows of the supernode share one external column list
// ext(S) = U(s) ∩ [e, n), their in-block columns [s, e) are dense, and a
// dependency supernode T contributes to the panel through contiguous
// slices: pivot row k of T has in-block U values at CSR positions
// dp[k]+1 … dp[k]+(te-k-1) and its ext(T) values as the CSR row tail.
// Runs are capped at maxPanelWidth so panel scratch stays cache-sized;
// splitting a run into consecutive chunks preserves both invariants.

// maxPanelWidth caps supernode width. 32 rows × 4 planes of n float64
// keeps a panel's scratch within L2 for thousand-node systems while
// giving the blocked update enough reuse per loaded pivot row.
const maxPanelWidth = 32

// buildSupernodes detects supernodes over the computed fill pattern and
// derives the dependency DAG plus its level sets. Called once at the end
// of AnalyzeSparse.
func (s *SparseSymbolic) buildSupernodes() {
	n := s.n
	rs, dp, cols := s.rowStart, s.diagPos, s.cols
	s.snOf = make([]int32, n)
	s.snStart = append(s.snStart[:0], 0)
	s.maxPanel = 1
	start := 0
	for r := 1; r <= n; r++ {
		join := false
		if r < n && r-start < maxPanelWidth {
			w := r - start
			lenU := rs[r+1] - dp[r]
			lenUp := rs[r] - dp[r-1]
			join = lenU == lenUp-1 && dp[r]-rs[r] >= w
			if join {
				// Nested U: row r's U segment equals row r-1's minus
				// its diagonal.
				for q := 0; q < lenU; q++ {
					if cols[dp[r]+q] != cols[dp[r-1]+1+q] {
						join = false
						break
					}
				}
			}
			if join {
				// Dense in-block L: the w pattern entries just left of
				// the diagonal are exactly start … r-1.
				for q := 0; q < w; q++ {
					if cols[dp[r]-w+q] != start+q {
						join = false
						break
					}
				}
			}
		}
		if !join {
			if w := r - start; w > s.maxPanel {
				s.maxPanel = w
			}
			s.snStart = append(s.snStart, int32(r))
			start = r
		}
	}
	S := len(s.snStart) - 1
	for sn := 0; sn < S; sn++ {
		for r := s.snStart[sn]; r < s.snStart[sn+1]; r++ {
			s.snOf[r] = int32(sn)
		}
	}

	// Dependency DAG: supernode sn depends on every supernode owning a
	// column of its rows' L patterns. Levels: longest dependency chain.
	s.depOff = make([]int32, S+1)
	level := make([]int32, S)
	seen := make([]int32, S)
	for i := range seen {
		seen[i] = -1
	}
	var deps []int32
	maxLvl := int32(0)
	for sn := 0; sn < S; sn++ {
		lo, hi := int(s.snStart[sn]), int(s.snStart[sn+1])
		lv := int32(0)
		for r := lo; r < hi; r++ {
			for t := rs[r]; t < dp[r]; t++ {
				k := cols[t]
				if k >= lo {
					break // in-block L; pattern is sorted
				}
				d := s.snOf[k]
				if seen[d] != int32(sn) {
					seen[d] = int32(sn)
					deps = append(deps, d)
					if level[d]+1 > lv {
						lv = level[d] + 1
					}
				}
			}
		}
		seg := deps[s.depOff[sn]:]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
		s.depOff[sn+1] = int32(len(deps))
		level[sn] = lv
		if lv > maxLvl {
			maxLvl = lv
		}
	}
	s.depSn = deps

	// Level sets, CSR over supernode ids; filling in ascending sn order
	// keeps each level's list ascending.
	nl := int(maxLvl) + 1
	s.lvlOff = make([]int32, nl+1)
	for _, lv := range level {
		s.lvlOff[lv+1]++
	}
	for l := 0; l < nl; l++ {
		s.lvlOff[l+1] += s.lvlOff[l]
	}
	s.lvlSn = make([]int32, S)
	cur := make([]int32, nl)
	copy(cur, s.lvlOff[:nl])
	for sn := 0; sn < S; sn++ {
		lv := level[sn]
		s.lvlSn[cur[lv]] = int32(sn)
		cur[lv]++
	}
}

// Supernodes returns the number of supernodes in the schedule.
func (s *SparseSymbolic) Supernodes() int { return len(s.snStart) - 1 }

// MaxPanel returns the widest supernode (rows per panel).
func (s *SparseSymbolic) MaxPanel() int { return s.maxPanel }

// Levels returns the number of level sets in the parallel schedule —
// the critical-path length of the supernode dependency DAG.
func (s *SparseSymbolic) Levels() int { return len(s.lvlOff) - 1 }

// PermutedRow maps an original row index to its permuted position — the
// coordinate space PartialRefactor's touched-row lists use.
func (s *SparseSymbolic) PermutedRow(orig int) int { return s.invRow[orig] }

// RowOfIndex returns the permuted row owning value-plane position t
// (binary search; intended for compile-time program construction).
func (s *SparseSymbolic) RowOfIndex(t int) int {
	if t < 0 || t >= len(s.cols) {
		return -1
	}
	return sort.SearchInts(s.rowStart, t+1) - 1
}

// panelScratch is one worker's supernodal elimination scratch: maxPanel
// dense work rows (stride n) holding the panel being eliminated, the
// gathered external-column rows for the blocked updates, and the active
// source-row list for one dependency supernode.
type panelScratch struct {
	wre, wim []float64
	gre, gim []float64
	act      []int
}

// growPanels sizes per-worker panel scratch for nw workers.
func (f *SparseLU) growPanels(nw int) {
	sym := f.sym
	need := sym.maxPanel * sym.n
	for len(f.panels) < nw {
		f.panels = append(f.panels, panelScratch{})
	}
	for w := 0; w < nw; w++ {
		p := &f.panels[w]
		if cap(p.wre) < need {
			p.wre = make([]float64, need)
			p.wim = make([]float64, need)
			p.gre = make([]float64, need)
			p.gim = make([]float64, need)
		}
		if cap(p.act) < sym.maxPanel {
			p.act = make([]int, 0, sym.maxPanel)
		}
		p.wre, p.wim = p.wre[:need], p.wim[:need]
		p.gre, p.gim = p.gre[:need], p.gim[:need]
	}
}

// RefactorSupernodal is RefactorReuse with the numeric phase driven by
// the supernodal schedule: same inputs, same guard, same ErrSingular
// contract, bit-identical factors, but the elimination runs as blocked
// panel-panel updates whose inner loops sweep contiguous float64 planes.
func (f *SparseLU) RefactorSupernodal(sym *SparseSymbolic, are, aim []float64) error {
	if err := f.prepRefactor(sym, are, aim); err != nil {
		return err
	}
	f.growPanels(1)
	p := &f.panels[0]
	S := sym.Supernodes()
	for sn := 0; sn < S; sn++ {
		if err := f.eliminateSupernode(sn, are, aim, p); err != nil {
			return err
		}
	}
	return nil
}

// eliminateSupernode factors the panel of supernode sn from the input
// planes into the CSR factor planes. The work rows in p must be (and are
// left) all-zero outside the elimination. The per-position arithmetic
// mirrors factorRowScalar exactly: pivots are applied in ascending
// global order, each update position receives the same single
// subtraction, and rows whose work-row value at a pivot is exactly zero
// skip that pivot — so the factors match the scalar sweep bit for bit.
func (f *SparseLU) eliminateSupernode(sn int, are, aim []float64, p *panelScratch) error {
	sym := f.sym
	n := sym.n
	cols, rs, dp := sym.cols, sym.rowStart, sym.diagPos
	vre, vim := f.vre, f.vim
	lo, hi := int(sym.snStart[sn]), int(sym.snStart[sn+1])
	w := hi - lo

	if w == 1 {
		// A singleton supernode gains nothing from panel machinery; the
		// plain scalar row walk over its exact L pattern is the fastest
		// (and trivially bit-identical) elimination. The panel's first
		// work row serves as scratch so parallel workers stay disjoint.
		return f.factorRowInto(lo, are, aim, p.wre[:n], p.wim[:n])
	}

	// Scatter the panel's rows from the input planes.
	for q := 0; q < w; q++ {
		r := lo + q
		wr := p.wre[q*n : (q+1)*n]
		wi := p.wim[q*n : (q+1)*n]
		for t := rs[r]; t < rs[r+1]; t++ {
			wr[cols[t]] = are[t]
			wi[cols[t]] = aim[t]
		}
	}

	// External phase: apply each dependency supernode T, ascending, as a
	// blocked update. T's pivot rows are contiguous in the CSR planes
	// (in-block slice + ext tail), and the panel's update columns are
	// gathered once per T so the inner axpys run over contiguous runs.
	for di := sym.depOff[sn]; di < sym.depOff[sn+1]; di++ {
		T := int(sym.depSn[di])
		ts, te := int(sym.snStart[T]), int(sym.snStart[T+1])
		wT := te - ts
		mT := rs[ts+1] - dp[ts] - wT // |ext(T)|
		extc := cols[rs[ts+1]-mT : rs[ts+1]]

		// Rows of the panel with any entry under T's columns. Positions
		// outside a row's pattern are exact zeros, so this scan is a
		// faithful "does scalar elimination touch T" test.
		act := p.act[:0]
		for q := 0; q < w; q++ {
			wr := p.wre[q*n+ts : q*n+te]
			wi := p.wim[q*n+ts : q*n+te]
			for x := range wr {
				if wr[x] != 0 || wi[x] != 0 {
					act = append(act, q)
					break
				}
			}
		}
		if len(act) == 0 {
			continue
		}

		if len(act) == 1 || wT < 3 {
			// Narrow dependencies (or a single active row) don't repay
			// the gather/scatter of their ext columns: update the work
			// rows in place through the CSR indices, pivot-outer so the
			// U row stays cache-hot across the active panel rows.
			for k := ts; k < te; k++ {
				irk, iik := f.ire[k], f.iim[k]
				us, ue := dp[k]+1, rs[k+1]
				for _, q := range act {
					wr := p.wre[q*n : (q+1)*n]
					wi := p.wim[q*n : (q+1)*n]
					ar, ai := wr[k], wi[k]
					if ar == 0 && ai == 0 {
						continue
					}
					mr := ar*irk - ai*iik
					mi := ar*iik + ai*irk
					wr[k], wi[k] = mr, mi
					for u := us; u < ue; u++ {
						j := cols[u]
						r0, m0 := vre[u], vim[u]
						wr[j] -= mr*r0 - mi*m0
						wi[j] -= mr*m0 + mi*r0
					}
				}
			}
			continue
		}

		// Gather the panel's ext(T) columns into contiguous g rows.
		for _, q := range act {
			wr := p.wre[q*n:]
			wi := p.wim[q*n:]
			gr := p.gre[q*n : q*n+mT]
			gi := p.gim[q*n : q*n+mT]
			for x, c := range extc {
				gr[x] = wr[c]
				gi[x] = wi[c]
			}
		}
		// Blocked update, register-tiled over pairs of active rows: each
		// pivot's U row is streamed once per pair (instead of once per
		// row) while the pair's g rows stay L1-resident across all of
		// T's pivots.
		a := 0
		for ; a+1 < len(act); a += 2 {
			f.panelUpdatePair(p, n, ts, te, mT, act[a], act[a+1])
		}
		if a < len(act) {
			f.panelUpdateOne(p, n, ts, te, mT, act[a])
		}
		// Scatter the updated ext(T) columns back: they include pivot
		// columns of supernodes between T and sn, which later dependency
		// updates read from the work rows.
		for _, q := range act {
			wr := p.wre[q*n:]
			wi := p.wim[q*n:]
			gr := p.gre[q*n : q*n+mT]
			gi := p.gim[q*n : q*n+mT]
			for x, c := range extc {
				wr[c] = gr[x]
				wi[c] = gi[x]
			}
		}
	}

	// Internal phase: dense triangular factorization within the panel.
	// Row q's in-block columns are the dense run [lo, hi) of its work
	// row; its ext(S) columns are gathered once into its g row.
	mS := rs[lo+1] - dp[lo] - w // |ext(S)|
	extS := cols[rs[lo+1]-mS : rs[lo+1]]
	for q := 0; q < w; q++ {
		wr := p.wre[q*n:]
		wi := p.wim[q*n:]
		gr := p.gre[q*n : q*n+mS]
		gi := p.gim[q*n : q*n+mS]
		for x, c := range extS {
			gr[x] = wr[c]
			gi[x] = wi[c]
		}
	}
	for q := 0; q < w; q++ {
		r := lo + q
		wr := p.wre[q*n : (q+1)*n]
		wi := p.wim[q*n : (q+1)*n]
		gr := p.gre[q*n : q*n+mS]
		gi := p.gim[q*n : q*n+mS]
		for qq := 0; qq < q; qq++ {
			kk := lo + qq
			ar, ai := wr[kk], wi[kk]
			if ar == 0 && ai == 0 {
				continue
			}
			mr := ar*f.ire[kk] - ai*f.iim[kk]
			mi := ar*f.iim[kk] + ai*f.ire[kk]
			wr[kk], wi[kk] = mr, mi
			sr := p.wre[qq*n : (qq+1)*n]
			si := p.wim[qq*n : (qq+1)*n]
			for c := kk + 1; c < hi; c++ {
				r0, m0 := sr[c], si[c]
				wr[c] -= mr*r0 - mi*m0
				wi[c] -= mr*m0 + mi*r0
			}
			hr := p.gre[qq*n : qq*n+mS]
			hsi := p.gim[qq*n : qq*n+mS]
			for x := range hr {
				r0, m0 := hr[x], hsi[x]
				gr[x] -= mr*r0 - mi*m0
				gi[x] -= mr*m0 + mi*r0
			}
		}
		dr, di := wr[r], wi[r]
		d2 := dr*dr + di*di
		if d2 == 0 || d2 < f.guard2 {
			// Leave the scratch clean for the next refactorization —
			// a failed panel must not contaminate later eliminations.
			f.clearPanel(sn, p)
			if d2 == 0 {
				return fmt.Errorf("numeric: zero pivot at row %d: %w", r, ErrSingular)
			}
			return fmt.Errorf("numeric: pivot at row %d below static-pivot guard: %w", r, ErrSingular)
		}
		f.ire[r], f.iim[r] = recip(dr, di)
	}

	// Gather the factored panel into the CSR planes and clear the work
	// rows: L and in-block values from the work row, ext(S) values from
	// the g row (the work row's ext positions are stale pre-internal
	// values and are cleared here too).
	for q := 0; q < w; q++ {
		r := lo + q
		wr := p.wre[q*n:]
		wi := p.wim[q*n:]
		gr := p.gre[q*n : q*n+mS]
		gi := p.gim[q*n : q*n+mS]
		x := 0
		for t := rs[r]; t < rs[r+1]; t++ {
			c := cols[t]
			if c < hi {
				vre[t] = wr[c]
				vim[t] = wi[c]
			} else {
				vre[t] = gr[x]
				vim[t] = gi[x]
				x++
			}
			wr[c] = 0
			wi[c] = 0
		}
	}
	return nil
}

// panelUpdateOne applies dependency supernode [ts,te) to one panel row:
// multiplier from the work row, dense in-block axpy, contiguous ext axpy
// on the gathered g row. Per-position arithmetic matches the scalar
// sweep exactly; rows with a zero value at a pivot skip it, as the
// scalar walk does by never visiting absent pattern entries.
func (f *SparseLU) panelUpdateOne(p *panelScratch, n, ts, te, mT, q int) {
	sym := f.sym
	rs, dp := sym.rowStart, sym.diagPos
	vre, vim := f.vre, f.vim
	wr := p.wre[q*n : (q+1)*n]
	wi := p.wim[q*n : (q+1)*n]
	gr := p.gre[q*n : q*n+mT]
	gi := p.gim[q*n : q*n+mT]
	for k := ts; k < te; k++ {
		ar, ai := wr[k], wi[k]
		if ar == 0 && ai == 0 {
			continue
		}
		mr := ar*f.ire[k] - ai*f.iim[k]
		mi := ar*f.iim[k] + ai*f.ire[k]
		wr[k], wi[k] = mr, mi
		ubr := vre[dp[k]+1 : dp[k]+te-k]
		ubi := vim[dp[k]+1 : dp[k]+te-k]
		br := wr[k+1 : k+1+len(ubr)]
		bi := wi[k+1 : k+1+len(ubi)]
		for x := range ubr {
			r0, m0 := ubr[x], ubi[x]
			br[x] -= mr*r0 - mi*m0
			bi[x] -= mr*m0 + mi*r0
		}
		uer := vre[rs[k+1]-mT : rs[k+1]]
		uei := vim[rs[k+1]-mT : rs[k+1]]
		for x := range uer {
			r0, m0 := uer[x], uei[x]
			gr[x] -= mr*r0 - mi*m0
			gi[x] -= mr*m0 + mi*r0
		}
	}
}

// panelUpdatePair is panelUpdateOne over two independent panel rows at
// once: the pivot's U row is loaded once per pair and both rows' axpys
// run fused, doubling the arithmetic per byte streamed. When only one
// of the rows is active at a pivot the update degenerates to the
// single-row form, so every row still performs exactly the scalar
// sweep's operations.
func (f *SparseLU) panelUpdatePair(p *panelScratch, n, ts, te, mT, q1, q2 int) {
	sym := f.sym
	rs, dp := sym.rowStart, sym.diagPos
	vre, vim := f.vre, f.vim
	wr1 := p.wre[q1*n : (q1+1)*n]
	wi1 := p.wim[q1*n : (q1+1)*n]
	gr1 := p.gre[q1*n : q1*n+mT]
	gi1 := p.gim[q1*n : q1*n+mT]
	wr2 := p.wre[q2*n : (q2+1)*n]
	wi2 := p.wim[q2*n : (q2+1)*n]
	gr2 := p.gre[q2*n : q2*n+mT]
	gi2 := p.gim[q2*n : q2*n+mT]
	for k := ts; k < te; k++ {
		ar1, ai1 := wr1[k], wi1[k]
		ar2, ai2 := wr2[k], wi2[k]
		z1 := ar1 == 0 && ai1 == 0
		z2 := ar2 == 0 && ai2 == 0
		if z1 && z2 {
			continue
		}
		irk, iik := f.ire[k], f.iim[k]
		ubr := vre[dp[k]+1 : dp[k]+te-k]
		ubi := vim[dp[k]+1 : dp[k]+te-k]
		uer := vre[rs[k+1]-mT : rs[k+1]]
		uei := vim[rs[k+1]-mT : rs[k+1]]
		if z2 {
			mr := ar1*irk - ai1*iik
			mi := ar1*iik + ai1*irk
			wr1[k], wi1[k] = mr, mi
			br := wr1[k+1 : k+1+len(ubr)]
			bi := wi1[k+1 : k+1+len(ubi)]
			for x := range ubr {
				r0, m0 := ubr[x], ubi[x]
				br[x] -= mr*r0 - mi*m0
				bi[x] -= mr*m0 + mi*r0
			}
			for x := range uer {
				r0, m0 := uer[x], uei[x]
				gr1[x] -= mr*r0 - mi*m0
				gi1[x] -= mr*m0 + mi*r0
			}
			continue
		}
		if z1 {
			mr := ar2*irk - ai2*iik
			mi := ar2*iik + ai2*irk
			wr2[k], wi2[k] = mr, mi
			br := wr2[k+1 : k+1+len(ubr)]
			bi := wi2[k+1 : k+1+len(ubi)]
			for x := range ubr {
				r0, m0 := ubr[x], ubi[x]
				br[x] -= mr*r0 - mi*m0
				bi[x] -= mr*m0 + mi*r0
			}
			for x := range uer {
				r0, m0 := uer[x], uei[x]
				gr2[x] -= mr*r0 - mi*m0
				gi2[x] -= mr*m0 + mi*r0
			}
			continue
		}
		m1r := ar1*irk - ai1*iik
		m1i := ar1*iik + ai1*irk
		wr1[k], wi1[k] = m1r, m1i
		m2r := ar2*irk - ai2*iik
		m2i := ar2*iik + ai2*irk
		wr2[k], wi2[k] = m2r, m2i
		b1r := wr1[k+1 : k+1+len(ubr)]
		b1i := wi1[k+1 : k+1+len(ubi)]
		b2r := wr2[k+1 : k+1+len(ubr)]
		b2i := wi2[k+1 : k+1+len(ubi)]
		for x := range ubr {
			r0, m0 := ubr[x], ubi[x]
			b1r[x] -= m1r*r0 - m1i*m0
			b1i[x] -= m1r*m0 + m1i*r0
			b2r[x] -= m2r*r0 - m2i*m0
			b2i[x] -= m2r*m0 + m2i*r0
		}
		for x := range uer {
			r0, m0 := uer[x], uei[x]
			g1r := gr1[x]
			g1i := gi1[x]
			g2r := gr2[x]
			g2i := gi2[x]
			gr1[x] = g1r - (m1r*r0 - m1i*m0)
			gi1[x] = g1i - (m1r*m0 + m1i*r0)
			gr2[x] = g2r - (m2r*r0 - m2i*m0)
			gi2[x] = g2i - (m2r*m0 + m2i*r0)
		}
	}
}

// clearPanel zeros supernode sn's work rows after a failed elimination.
// Every write during elimination lands inside a row's static pattern, so
// sweeping the pattern restores the all-zero invariant.
func (f *SparseLU) clearPanel(sn int, p *panelScratch) {
	sym := f.sym
	n := sym.n
	cols, rs := sym.cols, sym.rowStart
	lo, hi := int(sym.snStart[sn]), int(sym.snStart[sn+1])
	for q := 0; q < hi-lo; q++ {
		r := lo + q
		wr := p.wre[q*n:]
		wi := p.wim[q*n:]
		for t := rs[r]; t < rs[r+1]; t++ {
			wr[cols[t]] = 0
			wi[cols[t]] = 0
		}
	}
}

// lvlBarrier is a reusable cyclic barrier for the level-set schedule.
type lvlBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
}

func newLvlBarrier(parties int) *lvlBarrier {
	b := &lvlBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *lvlBarrier) wait() {
	b.mu.Lock()
	g := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for g == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// RefactorParallel is RefactorSupernodal with the level-set schedule
// fanned out over `workers` goroutines: each level's supernodes are
// claimed from a shared cursor, and a barrier separates levels so every
// dependency is factored before its dependents start. Supernodes write
// disjoint factor rows, so the factors are bit-identical at every worker
// count (and to the sequential and scalar paths). On a singular pivot
// the current level still drains — same-level supernodes are
// independent — and the failure with the smallest supernode id is
// reported, so the outcome does not depend on scheduling; which row a
// multi-failure error names may still differ from the sequential sweep,
// but it always wraps ErrSingular. workers ≤ 1 runs sequentially; the
// parallel path allocates (goroutines, barrier) per call.
func (f *SparseLU) RefactorParallel(sym *SparseSymbolic, are, aim []float64, workers int) error {
	if workers <= 1 {
		return f.RefactorSupernodal(sym, are, aim)
	}
	if err := f.prepRefactor(sym, are, aim); err != nil {
		return err
	}
	f.growPanels(workers)
	nl := sym.Levels()
	if cap(f.lvlCur) < nl {
		f.lvlCur = make([]int64, nl)
	}
	f.lvlCur = f.lvlCur[:nl]
	for i := range f.lvlCur {
		f.lvlCur[i] = 0
	}

	var (
		failed  atomic.Bool
		errMu   sync.Mutex
		errSn   = sym.Supernodes()
		callErr error
	)
	bar := newLvlBarrier(workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			p := &f.panels[wk]
			for lv := 0; lv < nl; lv++ {
				// A failure stops the schedule at level granularity:
				// the failing level drains fully (deterministic error
				// selection), deeper levels never start.
				if !failed.Load() {
					base := int(sym.lvlOff[lv])
					cnt := int(sym.lvlOff[lv+1]) - base
					for {
						idx := int(atomic.AddInt64(&f.lvlCur[lv], 1)) - 1
						if idx >= cnt {
							break
						}
						sn := int(sym.lvlSn[base+idx])
						if err := f.eliminateSupernode(sn, are, aim, p); err != nil {
							failed.Store(true)
							errMu.Lock()
							if sn < errSn {
								errSn, callErr = sn, err
							}
							errMu.Unlock()
						}
					}
				}
				bar.wait()
			}
		}(wk)
	}
	wg.Wait()
	return callErr
}

// PartialRefactor clones base's factorization over the same symbolic
// pattern and re-eliminates only the rows transitively affected by the
// given touched permuted rows under the patched value planes are/aim:
// row i is recomputed when it is touched or when any column of its L
// pattern is a recomputed row (exact reachability over the static
// patterns — a superset of the touched columns' elimination-tree
// ancestors for unsymmetric fill). Untouched rows keep base's values
// verbatim, so the result is bit-identical to a from-scratch
// RefactorReuse on the patched planes. It returns the number of rows
// recomputed. The pivot guard is re-derived from the patched magnitude;
// when it tightens past base's, the kept pivots are re-checked so
// accept/reject matches the from-scratch sweep.
func (f *SparseLU) PartialRefactor(base *SparseLU, are, aim []float64, touched []int) (int, error) {
	if base.sym == nil {
		return 0, fmt.Errorf("numeric: partial refactor from unfactored base: %w", ErrDimension)
	}
	sym := base.sym
	if err := f.prepRefactor(sym, are, aim); err != nil {
		return 0, err
	}
	n := sym.n
	copy(f.vre, base.vre)
	copy(f.vim, base.vim)
	copy(f.ire, base.ire)
	copy(f.iim, base.iim)

	if len(f.markRow) < n {
		f.markRow = make([]int, n)
		f.markGen = 0
	}
	f.markGen++
	gen := f.markGen
	min := n
	for _, r := range touched {
		if r < 0 || r >= n {
			return 0, fmt.Errorf("numeric: partial refactor touched row %d out of range n=%d: %w", r, n, ErrDimension)
		}
		f.markRow[r] = gen
		if r < min {
			min = r
		}
	}

	cols, rs, dp := sym.cols, sym.rowStart, sym.diagPos
	count := 0
	for i := min; i < n; i++ {
		m := f.markRow[i] == gen
		if !m {
			for t := rs[i]; t < dp[i]; t++ {
				if f.markRow[cols[t]] == gen {
					m = true
					break
				}
			}
			if m {
				f.markRow[i] = gen
			}
		}
		if !m {
			continue
		}
		count++
		if err := f.factorRowScalar(i, are, aim); err != nil {
			return count, err
		}
	}

	// The guard derives from the patched magnitude; if it tightened,
	// pivots inherited from base must pass it too, exactly as a
	// from-scratch refactorization would demand.
	if f.guard2 > base.guard2 {
		for i := 0; i < n; i++ {
			if f.markRow[i] == gen && i >= min {
				continue
			}
			dr, di := f.vre[dp[i]], f.vim[dp[i]]
			if dr*dr+di*di < f.guard2 {
				return count, fmt.Errorf("numeric: pivot at row %d below static-pivot guard: %w", i, ErrSingular)
			}
		}
	}
	return count, nil
}
