package numeric

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

// gridSystem builds the pattern and value planes of a k×k 5-point mesh
// (the shape of the rc-grid CUT family): diagonally dominant complex
// values on a 2-D grid graph. Real fill, real supernodes — the pattern
// class the supernodal phase exists for.
func gridSystem(rng *rand.Rand, k int) (int, [][]int, func(sym *SparseSymbolic) ([]float64, []float64)) {
	n := k * k
	rows := make([][]int, n)
	at := func(x, y int) int { return y*k + x }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			i := at(x, y)
			rows[i] = append(rows[i], i)
			if x > 0 {
				rows[i] = append(rows[i], at(x-1, y))
			}
			if x < k-1 {
				rows[i] = append(rows[i], at(x+1, y))
			}
			if y > 0 {
				rows[i] = append(rows[i], at(x, y-1))
			}
			if y < k-1 {
				rows[i] = append(rows[i], at(x, y+1))
			}
		}
	}
	vals := make([]complex128, n)
	for i := range vals {
		vals[i] = complex(4.5+rng.Float64(), 0.3+rng.Float64())
	}
	planes := func(sym *SparseSymbolic) ([]float64, []float64) {
		re := make([]float64, sym.LUNNZ())
		im := make([]float64, sym.LUNNZ())
		for i, r := range rows {
			for _, j := range r {
				t := sym.ValueIndex(i, j)
				if i == j {
					re[t] += real(vals[i])
					im[t] += imag(vals[i])
				} else {
					re[t] += -1 + 0.01*float64((i+j)%7)
					im[t] += -0.1
				}
			}
		}
		return re, im
	}
	return n, rows, planes
}

// TestSupernodalMatchesScalarBitIdentical pins the core contract: the
// supernodal and parallel refactorizations produce factors bit-identical
// to the scalar sweep — same vre/vim/ire/iim, float for float — on
// random unsymmetric systems and on grid meshes, at several worker
// counts.
func TestSupernodalMatchesScalarBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	type caseSys struct {
		name string
		sym  *SparseSymbolic
		re   []float64
		im   []float64
	}
	var cases []caseSys
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		m, rows := randSparseSystem(rng, n)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		re, im := planesFor(t, sym, m)
		cases = append(cases, caseSys{fmt.Sprintf("rand-%d", n), sym, re, im})
	}
	for _, k := range []int{3, 8, 16, 23} {
		n, rows, planes := gridSystem(rng, k)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			t.Fatalf("grid analyze: %v", err)
		}
		re, im := planes(sym)
		cases = append(cases, caseSys{fmt.Sprintf("grid-%d", k), sym, re, im})
	}
	for _, cs := range cases {
		var ref, sup SparseLU
		if err := ref.RefactorReuse(cs.sym, cs.re, cs.im); err != nil {
			t.Fatalf("%s: scalar refactor: %v", cs.name, err)
		}
		if err := sup.RefactorSupernodal(cs.sym, cs.re, cs.im); err != nil {
			t.Fatalf("%s: supernodal refactor: %v", cs.name, err)
		}
		compareFactors(t, cs.name+" supernodal", &ref, &sup)
		for _, workers := range []int{2, 4, runtime.NumCPU()} {
			var par SparseLU
			if err := par.RefactorParallel(cs.sym, cs.re, cs.im, workers); err != nil {
				t.Fatalf("%s: parallel(%d) refactor: %v", cs.name, workers, err)
			}
			compareFactors(t, fmt.Sprintf("%s parallel(%d)", cs.name, workers), &ref, &par)
		}
	}
}

func compareFactors(t *testing.T, name string, want, got *SparseLU) {
	t.Helper()
	for i := range want.vre {
		if want.vre[i] != got.vre[i] || want.vim[i] != got.vim[i] {
			t.Fatalf("%s: factor value %d differs: (%g,%g) vs (%g,%g)",
				name, i, want.vre[i], want.vim[i], got.vre[i], got.vim[i])
		}
	}
	for i := range want.ire {
		if want.ire[i] != got.ire[i] || want.iim[i] != got.iim[i] {
			t.Fatalf("%s: inverse diagonal %d differs", name, i)
		}
	}
}

// TestSupernodeScheduleInvariants checks the detected schedule: runs
// cover [0,n) in order, widths respect the cap, every dependency
// precedes its dependent, and levels strictly order dependencies.
func TestSupernodeScheduleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, rows, _ := gridSystem(rng, 20)
	sym, err := AnalyzeSparse(n, rows)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	S := sym.Supernodes()
	if S < 1 || int(sym.snStart[0]) != 0 || int(sym.snStart[S]) != n {
		t.Fatalf("supernodes do not cover [0,%d): %v", n, sym.snStart)
	}
	if sym.MaxPanel() > maxPanelWidth || sym.MaxPanel() < 1 {
		t.Fatalf("MaxPanel %d out of [1,%d]", sym.MaxPanel(), maxPanelWidth)
	}
	// A 20×20 mesh must actually produce multi-row supernodes, or the
	// blocked phase is vacuous.
	if sym.MaxPanel() < 4 {
		t.Fatalf("grid mesh produced MaxPanel %d; expected real supernodes", sym.MaxPanel())
	}
	level := make([]int, S)
	for lv := 0; lv < sym.Levels(); lv++ {
		for x := sym.lvlOff[lv]; x < sym.lvlOff[lv+1]; x++ {
			level[sym.lvlSn[x]] = lv
		}
	}
	for sn := 0; sn < S; sn++ {
		for di := sym.depOff[sn]; di < sym.depOff[sn+1]; di++ {
			d := int(sym.depSn[di])
			if d >= sn {
				t.Fatalf("supernode %d depends on non-earlier %d", sn, d)
			}
			if level[d] >= level[sn] {
				t.Fatalf("dependency %d (level %d) not below %d (level %d)", d, level[d], sn, level[sn])
			}
		}
	}
	for i := 0; i < n; i++ {
		sn := int(sym.snOf[i])
		if i < int(sym.snStart[sn]) || i >= int(sym.snStart[sn+1]) {
			t.Fatalf("snOf[%d]=%d outside its run", i, sn)
		}
	}
}

// TestPartialRefactorMatchesFromScratch is the quick property: for
// random systems and random delta patterns (random subsets of pattern
// positions perturbed), PartialRefactor from the base factorization is
// bit-identical to a from-scratch RefactorReuse of the patched planes.
func TestPartialRefactorMatchesFromScratch(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m, rows := randSparseSystem(rng, n)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			return false
		}
		re, im := planesFor(t, sym, m)
		var base SparseLU
		if err := base.RefactorReuse(sym, re, im); err != nil {
			// Random system tripped the static-pivot guard: nothing to
			// patch against; treat as vacuously true.
			return true
		}
		// Patch a few structural entries (delta pattern of a fault: a
		// handful of positions, as addRank1Sparse produces).
		pre := append([]float64(nil), re...)
		pim := append([]float64(nil), im...)
		touched := map[int]bool{}
		np := 1 + rng.Intn(4)
		for p := 0; p < np; p++ {
			t2 := rng.Intn(sym.LUNNZ())
			pre[t2] += rng.Float64() - 0.5
			pim[t2] += rng.Float64() - 0.5
			touched[sym.RowOfIndex(t2)] = true
		}
		var tr []int
		for r := range touched {
			tr = append(tr, r)
		}
		var scratch, partial SparseLU
		errScratch := scratch.RefactorReuse(sym, pre, pim)
		cnt, errPartial := partial.PartialRefactor(&base, pre, pim, tr)
		if (errScratch == nil) != (errPartial == nil) {
			t.Logf("seed %d: from-scratch err=%v, partial err=%v", seed, errScratch, errPartial)
			return false
		}
		if errScratch != nil {
			return errors.Is(errPartial, ErrSingular)
		}
		if cnt < 1 || cnt > n {
			return false
		}
		for i := range scratch.vre {
			if scratch.vre[i] != partial.vre[i] || scratch.vim[i] != partial.vim[i] {
				t.Logf("seed %d: factor value %d differs", seed, i)
				return false
			}
		}
		for i := range scratch.ire {
			if scratch.ire[i] != partial.ire[i] || scratch.iim[i] != partial.iim[i] {
				t.Logf("seed %d: inverse diagonal %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPartialRefactorRecomputesSuffixOnly pins the economic point: on a
// banded ladder-like system, touching a late row recomputes far fewer
// rows than the whole matrix.
func TestPartialRefactorRecomputesSuffixOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, rows, planes := gridSystem(rng, 16)
	sym, err := AnalyzeSparse(n, rows)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	re, im := planes(sym)
	var base SparseLU
	if err := base.RefactorReuse(sym, re, im); err != nil {
		t.Fatalf("refactor: %v", err)
	}
	// Patch one diagonal entry; the affected set is bounded by the rows
	// reachable from it, which for a mesh is a small fraction of n.
	pre := append([]float64(nil), re...)
	pim := append([]float64(nil), im...)
	t2 := sym.ValueIndex(3, 3)
	pre[t2] += 0.7
	var partial SparseLU
	cnt, err := partial.PartialRefactor(&base, pre, pim, []int{sym.RowOfIndex(t2)})
	if err != nil {
		t.Fatalf("partial refactor: %v", err)
	}
	if cnt < 1 || cnt >= n {
		t.Fatalf("partial refactor recomputed %d of %d rows", cnt, n)
	}
	var scratch SparseLU
	if err := scratch.RefactorReuse(sym, pre, pim); err != nil {
		t.Fatalf("from-scratch: %v", err)
	}
	compareFactors(t, "suffix partial", &scratch, &partial)
}

// TestPartialRefactorGuards covers the error surface: unfactored base,
// out-of-range touched rows, all-zero patched planes.
func TestPartialRefactorGuards(t *testing.T) {
	sym, err := AnalyzeSparse(2, [][]int{{0, 1}, {0, 1}})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	re := []float64{4, 1, 1, 4}
	im := []float64{0, 0, 0, 0}
	var base, f SparseLU
	if _, err := f.PartialRefactor(&base, re, im, []int{0}); !errors.Is(err, ErrDimension) {
		t.Fatalf("unfactored base: got %v, want ErrDimension", err)
	}
	if err := base.RefactorReuse(sym, re, im); err != nil {
		t.Fatalf("refactor: %v", err)
	}
	if _, err := f.PartialRefactor(&base, re, im, []int{2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("out-of-range touched row: got %v, want ErrDimension", err)
	}
	zero := make([]float64, sym.LUNNZ())
	if _, err := f.PartialRefactor(&base, zero, zero, []int{0}); !errors.Is(err, ErrSingular) {
		t.Fatalf("all-zero patch: got %v, want ErrSingular", err)
	}
	// A patch that makes the matrix singular must surface ErrSingular.
	sing := []float64{1, 1, 1, 1}
	if _, err := f.PartialRefactor(&base, sing, im, []int{0, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular patch: got %v, want ErrSingular", err)
	}
	// After a failed supernodal elimination the scratch must stay clean:
	// a following good refactorization still matches the scalar sweep.
	var sup SparseLU
	if err := sup.RefactorSupernodal(sym, sing, im); !errors.Is(err, ErrSingular) {
		t.Fatalf("supernodal singular: got %v, want ErrSingular", err)
	}
	if err := sup.RefactorSupernodal(sym, re, im); err != nil {
		t.Fatalf("supernodal after failure: %v", err)
	}
	var ref SparseLU
	if err := ref.RefactorReuse(sym, re, im); err != nil {
		t.Fatalf("scalar: %v", err)
	}
	compareFactors(t, "post-failure supernodal", &ref, &sup)
}

// TestSupernodalRefactorAllocationFree pins the steady-state contract
// for the sequential supernodal path (the per-frequency hot path): after
// one warm-up, refactor + block solve performs no heap allocation. The
// parallel path is excluded — it spawns goroutines by design.
func TestSupernodalRefactorAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n, rows, planes := gridSystem(rng, 12)
	sym, err := AnalyzeSparse(n, rows)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	re, im := planes(sym)
	var f SparseLU
	blk := NewBlock(n, 4)
	rhs := NewBlock(n, 4)
	for c := 0; c < 4; c++ {
		for i := 0; i < n; i++ {
			rhs.Set(i, c, complex(rng.Float64(), rng.Float64()))
		}
	}
	run := func() {
		if err := f.RefactorSupernodal(sym, re, im); err != nil {
			t.Fatalf("refactor: %v", err)
		}
		blk.CopyFrom(rhs)
		if err := f.SolveBlock(blk); err != nil {
			t.Fatalf("solve: %v", err)
		}
	}
	run()
	if avg := testing.AllocsPerRun(20, run); avg > 0 {
		t.Fatalf("supernodal refactor+solve allocates %.1f times per run after warm-up", avg)
	}
}

// TestPartialRefactorAllocationFree pins the same contract for the
// partial path once scratch is warm.
func TestPartialRefactorAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, rows, planes := gridSystem(rng, 12)
	sym, err := AnalyzeSparse(n, rows)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	re, im := planes(sym)
	var base, f SparseLU
	if err := base.RefactorReuse(sym, re, im); err != nil {
		t.Fatalf("refactor: %v", err)
	}
	pre := append([]float64(nil), re...)
	pim := append([]float64(nil), im...)
	t2 := sym.ValueIndex(n/2, n/2)
	pre[t2] += 0.25
	touched := []int{sym.RowOfIndex(t2)}
	run := func() {
		if _, err := f.PartialRefactor(&base, pre, pim, touched); err != nil {
			t.Fatalf("partial refactor: %v", err)
		}
	}
	run()
	if avg := testing.AllocsPerRun(20, run); avg > 0 {
		t.Fatalf("partial refactor allocates %.1f times per run after warm-up", avg)
	}
}

// BenchmarkSparseRefactor compares the scalar and supernodal numeric
// phases on mesh patterns of increasing size (the ftbench sparse suite
// measures the same thing through the engine).
func BenchmarkSparseRefactor(b *testing.B) {
	for _, k := range []int{16, 32, 45} {
		rng := rand.New(rand.NewSource(5))
		n, rows, planes := gridSystem(rng, k)
		sym, err := AnalyzeSparse(n, rows)
		if err != nil {
			b.Fatalf("analyze: %v", err)
		}
		re, im := planes(sym)
		var f SparseLU
		b.Run(fmt.Sprintf("scalar/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f.RefactorReuse(sym, re, im); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("supernodal/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f.RefactorSupernodal(sym, re, im); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
