package numeric

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestFactorSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{
		{1, 2},
		{2, 4},
	})
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	a, _ := MatrixFromRows([][]complex128{{2, 1}, {1, 3}})
	x, err := Solve(a, []complex128{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-1) > 1e-12 || cmplx.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveComplexSystem(t *testing.T) {
	// (1+i)x = 2i → x = 2i/(1+i) = 1+i.
	a, _ := MatrixFromRows([][]complex128{{1 + 1i}})
	x, err := Solve(a, []complex128{2i})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-(1+1i)) > 1e-12 {
		t.Fatalf("x = %v, want 1+i", x[0])
	}
}

func TestSolveRhsLenMismatch(t *testing.T) {
	f, err := Factor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]complex128{1, 2}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestDetTriangularAndPermutation(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{
		{2, 1, 0},
		{0, 3, 5},
		{0, 0, 4},
	})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); cmplx.Abs(d-24) > 1e-12 {
		t.Fatalf("det = %v, want 24", d)
	}
	// Swapping two rows flips the sign.
	b, _ := MatrixFromRows([][]complex128{
		{0, 3, 5},
		{2, 1, 0},
		{0, 0, 4},
	})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := fb.Det(); cmplx.Abs(d+24) > 1e-12 {
		t.Fatalf("det = %v, want -24", d)
	}
}

func TestDetSingularViaHelper(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1, 1}, {1, 1}})
	d, err := Det(a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("det = %v, want 0", d)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 6, 6)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := f.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equalish(Identity(6), 1e-9) {
		t.Fatal("A * A^-1 != I")
	}
}

func TestSolveMatrixMultipleRhs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 5, 5)
	b := randomMatrix(rng, 5, 3)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := a.Mul(x)
	if err != nil {
		t.Fatal(err)
	}
	if !ax.Equalish(b, 1e-9) {
		t.Fatal("A*X != B")
	}
}

func TestConditionEstimateOrdersOfMagnitude(t *testing.T) {
	// Well-conditioned: identity has κ = 1.
	f, _ := Factor(Identity(4))
	if c := f.ConditionEstimate(); c < 0.5 || c > 10 {
		t.Fatalf("cond(I) estimate = %g, want about 1", c)
	}
	// Badly scaled diagonal: κ = 1e12.
	d := Identity(3)
	d.Set(2, 2, 1e-12)
	fd, _ := Factor(d)
	if c := fd.ConditionEstimate(); c < 1e10 {
		t.Fatalf("cond estimate = %g, want >= 1e10", c)
	}
}

func TestSolveInto(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{4, 0}, {0, 2}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, 2)
	if err := f.SolveInto(dst, []complex128{8, 6}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("dst = %v, want [2 3]", dst)
	}
	if err := f.SolveInto(dst[:1], []complex128{8, 6}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

// Property: for random well-conditioned systems, the solve residual is tiny.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomMatrix(r, n, n)
		// Diagonal boost keeps the test focused on solver accuracy, not
		// random near-singularity.
		for i := 0; i < n; i++ {
			a.Add(i, i, complex(float64(n), float64(n)))
		}
		b := randomVector(r, n)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		res, err := Residual(a, x, b)
		if err != nil {
			return false
		}
		return res < 1e-9*(1+NormInfVec(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A·B) = det(A)·det(B).
func TestQuickDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomMatrix(r, n, n)
		b := randomMatrix(r, n, n)
		ab, _ := a.Mul(b)
		da, err1 := Det(a)
		db, err2 := Det(b)
		dab, err3 := Det(ab)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		scale := cmplx.Abs(da)*cmplx.Abs(db) + 1
		return cmplx.Abs(dab-da*db) < 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
