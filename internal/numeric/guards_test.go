package numeric

import (
	"errors"
	"math/rand"
	"testing"
)

// TestBlockPlanesFor pins the checked raw-plane accessor: the stated
// shape must match the block exactly, and a mismatch is ErrDimension
// with no planes handed out.
func TestBlockPlanesFor(t *testing.T) {
	b := NewBlock(5, 3)
	b.Set(2, 1, 4+2i)

	re, im, err := b.PlanesFor(5, 3)
	if err != nil {
		t.Fatalf("matching shape: %v", err)
	}
	// The returned planes alias the block under the i*cols+j contract.
	if re[2*3+1] != 4 || im[2*3+1] != 2 {
		t.Fatalf("planes at (2,1): %g+%gi, want 4+2i", re[2*3+1], im[2*3+1])
	}
	re[0*3+2], im[0*3+2] = -1, 7
	if got := b.At(0, 2); got != complex(-1, 7) {
		t.Fatalf("write through plane not visible: %v", got)
	}

	for _, tc := range []struct{ rows, cols int }{
		{5, 4}, {4, 3}, {3, 5}, {0, 0}, {15, 1},
	} {
		re, im, err := b.PlanesFor(tc.rows, tc.cols)
		if !errors.Is(err, ErrDimension) {
			t.Errorf("PlanesFor(%d, %d): err = %v, want ErrDimension", tc.rows, tc.cols, err)
		}
		if re != nil || im != nil {
			t.Errorf("PlanesFor(%d, %d): planes returned on mismatch", tc.rows, tc.cols)
		}
	}

	// Reset re-validates against the new shape: the old one stops
	// matching, the new one works.
	b.Reset(2, 7)
	if _, _, err := b.PlanesFor(5, 3); !errors.Is(err, ErrDimension) {
		t.Errorf("stale shape after Reset: err = %v, want ErrDimension", err)
	}
	if _, _, err := b.PlanesFor(2, 7); err != nil {
		t.Errorf("fresh shape after Reset: %v", err)
	}
}

// TestSolveBlockIntoGuards pins the validate-before-clobber contract of
// both dense SolveBlockInto implementations: a rhs whose row count does
// not match the factorization reports ErrDimension and leaves dst
// untouched — shape and contents.
func TestSolveBlockIntoGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 6
	a := randWellConditioned(rng, n)

	lu, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	slu, err := FactorSoA(SoAFromMatrix(a))
	if err != nil {
		t.Fatal(err)
	}

	wrong := randBlock(rng, n+2, 3)
	for _, tc := range []struct {
		name  string
		solve func(dst, rhs *Block) error
	}{
		{"LU", lu.SolveBlockInto},
		{"SoALU", slu.SolveBlockInto},
	} {
		dst := randBlock(rng, n, 2)
		mark := dst.At(1, 1)
		if err := tc.solve(dst, wrong); !errors.Is(err, ErrDimension) {
			t.Errorf("%s.SolveBlockInto wrong rows: err = %v, want ErrDimension", tc.name, err)
		}
		if dst.Rows() != n || dst.Cols() != 2 {
			t.Errorf("%s: dst reshaped to %dx%d by failed solve", tc.name, dst.Rows(), dst.Cols())
		}
		if got := dst.At(1, 1); got != mark {
			t.Errorf("%s: dst contents clobbered by failed solve", tc.name)
		}

		// A matching rhs still solves, through the same entry point.
		good := randBlock(rng, n, 2)
		if err := tc.solve(dst, good); err != nil {
			t.Errorf("%s.SolveBlockInto matching rhs: %v", tc.name, err)
		}
	}
}
