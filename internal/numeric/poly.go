package numeric

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Poly is a polynomial with real coefficients in ascending power order:
// Poly{a0, a1, a2} represents a0 + a1·s + a2·s².
//
// Transfer functions of lumped linear circuits are ratios of such
// polynomials; the analysis package uses them to cross-check MNA results
// against closed forms.
type Poly []float64

// Degree returns the degree after trimming trailing (near-)zero
// coefficients. The zero polynomial has degree -1 by convention.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Trim returns p without trailing zero coefficients.
func (p Poly) Trim() Poly {
	d := p.Degree()
	if d < 0 {
		return Poly{}
	}
	out := make(Poly, d+1)
	copy(out, p[:d+1])
	return out
}

// Eval evaluates p at the complex point s by Horner's rule.
func (p Poly) Eval(s complex128) complex128 {
	var acc complex128
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc*s + complex(p[i], 0)
	}
	return acc
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, v := range q {
		out[i] += v
	}
	return out.Trim()
}

// MulPoly returns the product p·q.
func (p Poly) MulPoly(q Poly) Poly {
	if p.Degree() < 0 || q.Degree() < 0 {
		return Poly{}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out.Trim()
}

// ScalePoly returns k·p.
func (p Poly) ScalePoly(k float64) Poly {
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = k * v
	}
	return out.Trim()
}

// Derivative returns dp/ds.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return Poly{}
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = float64(i) * p[i]
	}
	return out.Trim()
}

// Roots finds all complex roots of p with the Durand–Kerner (Weierstrass)
// simultaneous iteration. It converges for the well-conditioned low-order
// polynomials that arise from filter transfer functions. maxIter bounds
// the iteration count; 200 is plenty in practice.
func (p Poly) Roots() ([]complex128, error) {
	q := p.Trim()
	d := q.Degree()
	if d < 1 {
		return nil, nil
	}
	// Normalize to monic.
	monic := make([]complex128, d+1)
	lead := q[d]
	for i := 0; i <= d; i++ {
		monic[i] = complex(q[i]/lead, 0)
	}
	evalMonic := func(s complex128) complex128 {
		var acc complex128
		for i := d; i >= 0; i-- {
			acc = acc*s + monic[i]
		}
		return acc
	}
	// Initial guesses on a spiral that is not a root of unity pattern.
	roots := make([]complex128, d)
	seed := complex(0.4, 0.9) // the customary Durand–Kerner seed
	roots[0] = seed
	for i := 1; i < d; i++ {
		roots[i] = roots[i-1] * seed
	}
	const maxIter = 500
	const tol = 1e-13
	for iter := 0; iter < maxIter; iter++ {
		var worst float64
		for i := 0; i < d; i++ {
			num := evalMonic(roots[i])
			den := complex(1, 0)
			for j := 0; j < d; j++ {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident iterates and continue.
				roots[i] += complex(1e-8, 1e-8)
				worst = math.Inf(1)
				continue
			}
			delta := num / den
			roots[i] -= delta
			if m := cmplx.Abs(delta); m > worst {
				worst = m
			}
		}
		if worst < tol {
			return roots, nil
		}
	}
	// Check residuals before giving up: slow convergence may still have
	// produced acceptable roots.
	for _, r := range roots {
		if cmplx.Abs(evalMonic(r)) > 1e-6 {
			return roots, fmt.Errorf("numeric: root finding did not converge for degree-%d polynomial", d)
		}
	}
	return roots, nil
}

// String renders the polynomial as e.g. "1 + 0.5s + 2s^2".
func (p Poly) String() string {
	t := p.Trim()
	if len(t) == 0 {
		return "0"
	}
	var parts []string
	for i, v := range t {
		if v == 0 && len(t) > 1 {
			continue
		}
		switch i {
		case 0:
			parts = append(parts, fmt.Sprintf("%g", v))
		case 1:
			parts = append(parts, fmt.Sprintf("%gs", v))
		default:
			parts = append(parts, fmt.Sprintf("%gs^%d", v, i))
		}
	}
	return strings.Join(parts, " + ")
}

// Rational is a real-coefficient rational function N(s)/D(s), the closed
// form of a lumped linear network's transfer function.
type Rational struct {
	Num Poly
	Den Poly
}

// Eval evaluates the rational function at s.
func (r Rational) Eval(s complex128) complex128 {
	return r.Num.Eval(s) / r.Den.Eval(s)
}

// MagDb returns |r(jω)| in decibels.
func (r Rational) MagDb(omega float64) float64 {
	return Db(cmplx.Abs(r.Eval(complex(0, omega))))
}

// Mag returns |r(jω)|.
func (r Rational) Mag(omega float64) float64 {
	return cmplx.Abs(r.Eval(complex(0, omega)))
}

// Phase returns the phase of r(jω) in radians.
func (r Rational) Phase(omega float64) float64 {
	return cmplx.Phase(r.Eval(complex(0, omega)))
}

// Poles returns the roots of the denominator.
func (r Rational) Poles() ([]complex128, error) { return r.Den.Roots() }

// Zeros returns the roots of the numerator.
func (r Rational) Zeros() ([]complex128, error) { return r.Num.Roots() }

// SecondOrderLowpass returns the canonical normalized 2nd-order low-pass
// K·ω0² / (s² + (ω0/Q)s + ω0²) — the closed form of the paper's CUT family.
func SecondOrderLowpass(k, omega0, q float64) Rational {
	return Rational{
		Num: Poly{k * omega0 * omega0},
		Den: Poly{omega0 * omega0, omega0 / q, 1},
	}
}

// SecondOrderBandpass returns K·(ω0/Q)s / (s² + (ω0/Q)s + ω0²).
func SecondOrderBandpass(k, omega0, q float64) Rational {
	return Rational{
		Num: Poly{0, k * omega0 / q},
		Den: Poly{omega0 * omega0, omega0 / q, 1},
	}
}

// SecondOrderHighpass returns K·s² / (s² + (ω0/Q)s + ω0²).
func SecondOrderHighpass(k, omega0, q float64) Rational {
	return Rational{
		Num: Poly{0, 0, k},
		Den: Poly{omega0 * omega0, omega0 / q, 1},
	}
}
