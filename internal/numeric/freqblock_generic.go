//go:build !amd64

package numeric

var fbAVX = false

// fbEliminateRowAVX is never called when fbAVX is false; this stub
// keeps non-amd64 builds linking.
func fbEliminateRowAVX(bw, bv, bd *float64, cols, dp, rs *int, lo, dpi int) {
	panic("numeric: fbEliminateRowAVX without AVX support")
}
