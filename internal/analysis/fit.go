package analysis

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// FitRational recovers a real-coefficient rational transfer function
// N(s)/D(s) (deg N = numDeg, deg D = denDeg, D monic) from frequency
// samples of the network, by linear least squares on the relation
// N(jω) − H(jω)·D(jω) = 0. For lumped linear circuits the fit is exact
// up to conditioning, which turns the sampled AC analysis into symbolic
// poles, zeros, ω0 and Q — the quantities filter designers reason with.
//
// omegas must contain at least (numDeg + denDeg + 1) distinct positive
// frequencies; more samples improve conditioning.
func (ac *AC) FitRational(source, outNode string, numDeg, denDeg int, omegas []float64) (numeric.Rational, error) {
	if numDeg < 0 || denDeg < 1 {
		return numeric.Rational{}, fmt.Errorf("analysis: bad fit degrees num=%d den=%d", numDeg, denDeg)
	}
	unknowns := (numDeg + 1) + denDeg // n_0..n_nd, d_0..d_{dd-1}; d_dd = 1
	if len(omegas) < unknowns {
		return numeric.Rational{}, fmt.Errorf("analysis: %d samples for %d unknowns", len(omegas), unknowns)
	}
	// Column scaling: normalize frequencies to their geometric mean so
	// powers of s stay well conditioned, then unscale coefficients.
	scale := geometricMean(omegas)
	if scale <= 0 || math.IsNaN(scale) {
		return numeric.Rational{}, fmt.Errorf("analysis: degenerate frequency set")
	}

	rows := len(omegas)
	a := numeric.NewMatrix(rows, unknowns)
	b := make([]complex128, rows)
	for k, w := range omegas {
		h, err := ac.Transfer(source, outNode, w)
		if err != nil {
			return numeric.Rational{}, err
		}
		s := complex(0, w/scale)
		// N(s) terms.
		pow := complex(1, 0)
		for i := 0; i <= numDeg; i++ {
			a.Set(k, i, pow)
			pow *= s
		}
		// -H·D(s) terms for d_0..d_{dd-1}.
		pow = complex(1, 0)
		for j := 0; j < denDeg; j++ {
			a.Set(k, numDeg+1+j, -h*pow)
			pow *= s
		}
		// RHS: +H·s^dd (from the monic d_dd = 1).
		b[k] = h * pow
	}

	// Least squares by normal equations: (AᴴA)x = Aᴴb.
	ah := a.ConjTranspose()
	ata, err := ah.Mul(a)
	if err != nil {
		return numeric.Rational{}, err
	}
	atb, err := ah.MulVec(b)
	if err != nil {
		return numeric.Rational{}, err
	}
	f, err := numeric.Factor(ata)
	if err != nil {
		return numeric.Rational{}, fmt.Errorf("analysis: rational fit is rank-deficient (degrees too high?): %w", err)
	}
	x, err := f.Solve(atb)
	if err != nil {
		return numeric.Rational{}, err
	}

	// Extract real coefficients and undo the frequency scaling:
	// coefficient of s^i was computed against (s/scale)^i.
	num := make(numeric.Poly, numDeg+1)
	for i := 0; i <= numDeg; i++ {
		num[i] = real(x[i]) / math.Pow(scale, float64(i))
	}
	den := make(numeric.Poly, denDeg+1)
	for j := 0; j < denDeg; j++ {
		den[j] = real(x[numDeg+1+j]) / math.Pow(scale, float64(j))
	}
	den[denDeg] = 1 / math.Pow(scale, float64(denDeg))

	// Normalize so the denominator's constant term is positive (cosmetic
	// but makes results stable for tests and display).
	if den[0] < 0 {
		num = num.ScalePoly(-1)
		den = den.ScalePoly(-1)
	}
	return numeric.Rational{Num: num.Trim(), Den: den.Trim()}, nil
}

// FitQuality returns the worst relative magnitude error of the fit over
// a validation frequency set.
func (ac *AC) FitQuality(r numeric.Rational, source, outNode string, omegas []float64) (float64, error) {
	var worst float64
	for _, w := range omegas {
		h, err := ac.Transfer(source, outNode, w)
		if err != nil {
			return 0, err
		}
		want := mag(h)
		got := r.Mag(w)
		var rel float64
		if want > 1e-15 {
			rel = math.Abs(got-want) / want
		} else {
			rel = math.Abs(got - want)
		}
		if rel > worst {
			worst = rel
		}
	}
	return worst, nil
}

func mag(h complex128) float64 { return math.Hypot(real(h), imag(h)) }

func geometricMean(x []float64) float64 {
	var acc float64
	for _, v := range x {
		if v <= 0 {
			return 0
		}
		acc += math.Log(v)
	}
	return math.Exp(acc / float64(len(x)))
}

// SecondOrderParams extracts (ω0, Q, DC gain) from a fitted second-order
// all-pole lowpass D(s) = d0 + d1·s + d2·s²: ω0 = sqrt(d0/d2),
// Q = sqrt(d0·d2)/d1.
func SecondOrderParams(r numeric.Rational) (omega0, q, dcGain float64, err error) {
	den := r.Den.Trim()
	if den.Degree() != 2 {
		return 0, 0, 0, fmt.Errorf("analysis: denominator degree %d, want 2", den.Degree())
	}
	d0, d1, d2 := den[0], den[1], den[2]
	if d0 <= 0 || d2 <= 0 || d1 <= 0 {
		return 0, 0, 0, fmt.Errorf("analysis: non-positive-definite denominator %v", den)
	}
	omega0 = math.Sqrt(d0 / d2)
	q = math.Sqrt(d0*d2) / d1
	num := r.Num.Trim()
	if len(num) == 0 {
		return 0, 0, 0, fmt.Errorf("analysis: zero numerator")
	}
	dcGain = num[0] / d0
	return omega0, q, dcGain, nil
}
