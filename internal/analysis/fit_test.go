package analysis

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/numeric"
)

func TestFitRationalRCLowpass(t *testing.T) {
	// RC lowpass with RC = 1e-3: H = 1/(1 + s·1e-3).
	c := circuit.New("rc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", 1000))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-6))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	omegas := numeric.Logspace(10, 1e5, 9)
	r, err := ac.FitRational("V1", "out", 0, 1, omegas)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize: N/D with D = d0 + d1 s; H(0) = n0/d0 = 1; time constant
	// d1/d0 = 1e-3.
	if math.Abs(r.Num[0]/r.Den[0]-1) > 1e-6 {
		t.Fatalf("DC gain = %g", r.Num[0]/r.Den[0])
	}
	if math.Abs(r.Den[1]/r.Den[0]-1e-3) > 1e-9 {
		t.Fatalf("time constant = %g", r.Den[1]/r.Den[0])
	}
	// One pole at -1000.
	poles, err := r.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 1 || math.Abs(real(poles[0])+1000) > 1e-3 {
		t.Fatalf("poles = %v, want [-1000]", poles)
	}
	// Validation error tiny across a wider band.
	q, err := ac.FitQuality(r, "V1", "out", numeric.Logspace(1, 1e6, 25))
	if err != nil {
		t.Fatal(err)
	}
	if q > 1e-6 {
		t.Fatalf("fit quality = %g", q)
	}
}

func TestFitRationalSecondOrder(t *testing.T) {
	// Sallen-Key-like behaviour from an RLC divider: series R-L, shunt C:
	// H = 1/(1 + sRC + s²LC), ω0 = 1/sqrt(LC), Q = sqrt(L/C)/R.
	c := circuit.New("rlc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "a", 2))
	c.MustAdd(circuit.NewInductor("L1", "a", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	omegas := numeric.Logspace(0.05, 20, 15)
	r, err := ac.FitRational("V1", "out", 0, 2, omegas)
	if err != nil {
		t.Fatal(err)
	}
	w0, q, dc, err := SecondOrderParams(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w0-1) > 1e-6 {
		t.Fatalf("ω0 = %g, want 1", w0)
	}
	if math.Abs(q-0.5) > 1e-6 {
		t.Fatalf("Q = %g, want 0.5", q)
	}
	if math.Abs(dc-1) > 1e-6 {
		t.Fatalf("DC gain = %g, want 1", dc)
	}
	// Poles: complex pair or real pair with product ω0² = 1.
	poles, err := r.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 2 {
		t.Fatalf("poles = %v", poles)
	}
	for _, p := range poles {
		if real(p) >= 0 {
			t.Fatalf("unstable fitted pole %v", p)
		}
	}
}

func TestFitRationalValidation(t *testing.T) {
	c := circuit.New("r")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "0", 1))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.FitRational("V1", "in", -1, 1, []float64{1, 2, 3}); err == nil {
		t.Fatal("negative numDeg accepted")
	}
	if _, err := ac.FitRational("V1", "in", 0, 0, []float64{1, 2, 3}); err == nil {
		t.Fatal("denDeg 0 accepted")
	}
	if _, err := ac.FitRational("V1", "in", 2, 3, []float64{1, 2}); err == nil {
		t.Fatal("too few samples accepted")
	}
}

func TestSecondOrderParamsValidation(t *testing.T) {
	if _, _, _, err := SecondOrderParams(numeric.Rational{Num: numeric.Poly{1}, Den: numeric.Poly{1, 1}}); err == nil {
		t.Fatal("first-order accepted")
	}
	if _, _, _, err := SecondOrderParams(numeric.Rational{Num: numeric.Poly{1}, Den: numeric.Poly{-1, 1, 1}}); err == nil {
		t.Fatal("indefinite denominator accepted")
	}
	if _, _, _, err := SecondOrderParams(numeric.Rational{Num: numeric.Poly{}, Den: numeric.Poly{1, 1, 1}}); err == nil {
		t.Fatal("zero numerator accepted")
	}
}

func TestFitPaperCUTThirdOrder(t *testing.T) {
	// The 7-passive NF lowpass is third order (three capacitors, no
	// loops of capacitors): an exact (0,3) fit must exist and its poles
	// must all be in the left half plane.
	c := circuit.New("nf7")
	c.MustAdd(circuit.NewVSource("Vin", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "m", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "m", "0", 1))
	c.MustAdd(circuit.NewResistor("R2", "m", "a", 1))
	c.MustAdd(circuit.NewCapacitor("C2", "a", "0", 2))
	c.MustAdd(circuit.NewResistor("R3", "a", "vg", 1))
	c.MustAdd(circuit.NewResistor("R4", "a", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C3", "vg", "out", 0.5))
	c.MustAdd(circuit.NewIdealOpAmp("U1", "0", "vg", "out"))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	omegas := numeric.Logspace(0.02, 50, 21)
	r, err := ac.FitRational("Vin", "out", 0, 3, omegas)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ac.FitQuality(r, "Vin", "out", numeric.Logspace(0.01, 100, 31))
	if err != nil {
		t.Fatal(err)
	}
	if q > 1e-4 {
		t.Fatalf("3rd-order fit quality = %g", q)
	}
	poles, err := r.Poles()
	if err != nil {
		t.Fatal(err)
	}
	if len(poles) != 3 {
		t.Fatalf("poles = %v", poles)
	}
	for _, p := range poles {
		if real(p) >= 0 {
			t.Fatalf("unstable pole %v", p)
		}
	}
	// DC gain magnitude 0.5 (inverting).
	if math.Abs(math.Abs(r.Num[0]/r.Den[0])-0.5) > 1e-4 {
		t.Fatalf("DC gain = %g", r.Num[0]/r.Den[0])
	}
}
