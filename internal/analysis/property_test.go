package analysis

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// randomRCNetwork builds a random connected ladder-ish RC network driven
// by one source — structurally valid by construction.
func randomRCNetwork(r *rand.Rand) *circuit.Circuit {
	c := circuit.New("rand")
	c.MustAdd(circuit.NewVSource("V1", "n0", "0", 1))
	n := 2 + r.Intn(5)
	for i := 1; i <= n; i++ {
		prev := nodeName(i - 1)
		cur := nodeName(i)
		c.MustAdd(circuit.NewResistor(rName(i), prev, cur, 0.1+r.Float64()*10))
		// Shunt element: alternate R and C, occasionally to a previous
		// node to create meshes.
		target := "0"
		if i > 2 && r.Intn(3) == 0 {
			target = nodeName(r.Intn(i - 1))
		}
		if r.Intn(2) == 0 {
			c.MustAdd(circuit.NewCapacitor(cName(i), cur, target, 0.1+r.Float64()*5))
		} else {
			c.MustAdd(circuit.NewResistor(rName(i+100), cur, target, 0.1+r.Float64()*10))
		}
	}
	return c
}

func nodeName(i int) string {
	if i == 0 {
		return "n0"
	}
	return "n" + string(rune('0'+i))
}
func rName(i int) string { return "R" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) }
func cName(i int) string { return "C" + string(rune('A'+i%26)) }

// Property: the AC solution is linear in the source amplitude
// (superposition for a single source): doubling the drive doubles every
// node voltage.
func TestQuickACLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomRCNetwork(r)
		omega := 0.01 + r.Float64()*100

		ac1, err := NewAC(c)
		if err != nil {
			return true // degenerate random network; skip
		}
		sol1, err := ac1.SolveAt(omega)
		if err != nil {
			return true
		}
		scaled := c.Clone()
		e, _ := scaled.Element("V1")
		e.(*circuit.VSource).Amplitude = 2
		ac2, err := NewAC(scaled)
		if err != nil {
			return false
		}
		sol2, err := ac2.SolveAt(omega)
		if err != nil {
			return false
		}
		for _, node := range c.Nodes() {
			v1, err1 := sol1.NodeVoltage(node)
			v2, err2 := sol2.NodeVoltage(node)
			if err1 != nil || err2 != nil {
				return false
			}
			if cmplx.Abs(v2-2*v1) > 1e-9*(1+cmplx.Abs(v1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomRCLadder builds a strict ladder: series impedances along the
// chain, shunts to ground only. For such networks the voltage-divider
// maximum principle holds at every node (general RC meshes can exceed
// unity at internal nodes when capacitors couple back to the driven
// node — a fact this test suite learned empirically).
func randomRCLadder(r *rand.Rand) *circuit.Circuit {
	c := circuit.New("ladder")
	c.MustAdd(circuit.NewVSource("V1", "n0", "0", 1))
	n := 2 + r.Intn(5)
	for i := 1; i <= n; i++ {
		prev := nodeName(i - 1)
		cur := nodeName(i)
		c.MustAdd(circuit.NewResistor(rName(i), prev, cur, 0.1+r.Float64()*10))
		if r.Intn(2) == 0 {
			c.MustAdd(circuit.NewCapacitor(cName(i), cur, "0", 0.1+r.Float64()*5))
		} else {
			c.MustAdd(circuit.NewResistor(rName(i+100), cur, "0", 0.1+r.Float64()*10))
		}
	}
	return c
}

// Property: an RC *ladder* driven by 1 V never shows gain: every node
// magnitude stays ≤ 1 (plus numerical slack).
func TestQuickRCLadderPassivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomRCLadder(r)
		ac, err := NewAC(c)
		if err != nil {
			return true
		}
		for _, omega := range []float64{0.01, 1, 50} {
			sol, err := ac.SolveAt(omega)
			if err != nil {
				return true
			}
			for _, node := range c.Nodes() {
				v, err := sol.NodeVoltage(node)
				if err != nil {
					return false
				}
				if cmplx.Abs(v) > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: |H| of a random RC network is continuous in ω — small
// frequency perturbations produce small magnitude changes (no spurious
// numerical jumps from the solver).
func TestQuickResponseContinuity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomRCNetwork(r)
		ac, err := NewAC(c)
		if err != nil {
			return true
		}
		out := c.Nodes()[len(c.Nodes())-1]
		omega := 0.1 + r.Float64()*10
		h1, err1 := ac.Transfer("V1", out, omega)
		h2, err2 := ac.Transfer("V1", out, omega*(1+1e-9))
		if err1 != nil || err2 != nil {
			return true
		}
		return cmplx.Abs(h1-h2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: reciprocity of passive two-ports. For a network of only R
// and C, the transfer impedance is symmetric: injecting a current at A
// and reading the voltage at B equals injecting at B and reading at A.
func TestQuickReciprocity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := circuit.New("recip")
		// Passive mesh between n1, n2, n3 and ground.
		nodes := []string{"n1", "n2", "n3", "0"}
		id := 0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				id++
				val := 0.2 + r.Float64()*5
				if (i+j+int(seed))%2 == 0 {
					c.MustAdd(circuit.NewResistor(rName(id), nodes[i], nodes[j], val))
				} else {
					c.MustAdd(circuit.NewCapacitor(cName(id), nodes[i], nodes[j], val))
				}
			}
		}
		omega := 0.1 + r.Float64()*10
		zAB, err1 := transferImpedance(c, "n1", "n2", omega)
		zBA, err2 := transferImpedance(c, "n2", "n1", omega)
		if err1 != nil || err2 != nil {
			return true
		}
		return cmplx.Abs(zAB-zBA) < 1e-9*(1+cmplx.Abs(zAB))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// transferImpedance injects 1 A into "from" and reads V(to).
func transferImpedance(c *circuit.Circuit, from, to string, omega float64) (complex128, error) {
	probe := c.Clone()
	probe.MustAdd(circuit.NewISource("Iprobe", "0", from, 1))
	ac, err := NewAC(probe)
	if err != nil {
		return 0, err
	}
	sol, err := ac.SolveAt(omega)
	if err != nil {
		return 0, err
	}
	return sol.NodeVoltage(to)
}
