package analysis

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
)

// Boltzmann constant (J/K) for thermal-noise densities.
const Boltzmann = 1.380649e-23

// NoiseContribution is one resistor's share of the output noise.
type NoiseContribution struct {
	// Element is the resistor's name.
	Element string
	// PSD is the contribution to the output noise power spectral
	// density in V²/Hz.
	PSD float64
}

// OutputNoise computes the thermal (Johnson–Nyquist) output noise power
// spectral density at the given node and angular frequency, by brute
// superposition: each resistor R contributes a 4kTR V²/Hz series noise
// source, which reaches the output through the squared magnitude of its
// individual transfer function. Independent sources are zeroed
// implicitly (their phasor amplitudes do not enter these solves).
//
// The per-element breakdown is returned sorted by insertion order;
// summing PSDs gives the total because thermal sources are independent.
func OutputNoise(c *circuit.Circuit, outNode string, omega, tempK float64) ([]NoiseContribution, float64, error) {
	if tempK <= 0 {
		return nil, 0, fmt.Errorf("analysis: nonpositive temperature %g K", tempK)
	}
	var out []NoiseContribution
	var total float64
	for _, e := range c.Elements() {
		r, ok := e.(*circuit.Resistor)
		if !ok {
			continue
		}
		// Transfer from a series voltage source in place of the resistor
		// to the output. Equivalent Norton form: inject a unit current
		// across the resistor's terminals and scale: a series source v_n
		// with the resistor produces the same response as current
		// v_n/R across it.
		h, err := transferFromCurrentInjection(c, r.Nodes()[0], r.Nodes()[1], outNode, omega)
		if err != nil {
			return nil, 0, err
		}
		// Series-source transfer = (current-injection transfer)/R.
		hv := cmplx.Abs(h) / r.Ohms
		psd := 4 * Boltzmann * tempK * r.Ohms * hv * hv
		out = append(out, NoiseContribution{Element: r.Name(), PSD: psd})
		total += psd
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("analysis: circuit has no resistors")
	}
	return out, total, nil
}

// transferFromCurrentInjection solves the network with all independent
// sources silenced and a unit AC current injected from node a to node b,
// returning the resulting output-node voltage.
func transferFromCurrentInjection(c *circuit.Circuit, a, b, outNode string, omega float64) (complex128, error) {
	probe := c.Clone()
	// Silence independent sources: voltage sources become 0 V (still
	// short circuits structurally), current sources 0 A.
	for _, e := range probe.Elements() {
		switch el := e.(type) {
		case *circuit.VSource:
			el.Amplitude = 0
		case *circuit.ISource:
			el.Amplitude = 0
		}
	}
	inj := circuit.NewISource("InoiseProbe", a, b, 1)
	if err := probe.Add(inj); err != nil {
		return 0, err
	}
	ac, err := NewAC(probe)
	if err != nil {
		return 0, err
	}
	sol, err := ac.SolveAt(omega)
	if err != nil {
		return 0, err
	}
	return sol.NodeVoltage(outNode)
}

// NoiseRMS integrates the output noise PSD over [wLo, wHi] rad/s on a
// logarithmic grid with n points (trapezoidal in linear frequency) and
// returns the RMS noise voltage. Note the conversion: PSD is per hertz,
// the band is given in rad/s.
func NoiseRMS(c *circuit.Circuit, outNode string, wLo, wHi, tempK float64, n int) (float64, error) {
	if !(wLo > 0 && wHi > wLo) || n < 2 {
		return 0, fmt.Errorf("analysis: bad noise band [%g, %g] with %d points", wLo, wHi, n)
	}
	// Logarithmic grid in ω.
	var power float64
	prevF := wLo / (2 * math.Pi)
	_, prevPSD, err := OutputNoise(c, outNode, wLo, tempK)
	if err != nil {
		return 0, err
	}
	for i := 1; i < n; i++ {
		w := wLo * math.Pow(wHi/wLo, float64(i)/float64(n-1))
		_, psd, err := OutputNoise(c, outNode, w, tempK)
		if err != nil {
			return 0, err
		}
		f := w / (2 * math.Pi)
		power += 0.5 * (psd + prevPSD) * (f - prevF)
		prevF, prevPSD = f, psd
	}
	return math.Sqrt(power), nil
}

// GroupDelay estimates -dφ/dω of the transfer function at omega by a
// central difference with relative step h.
func (ac *AC) GroupDelay(source, outNode string, omega, h float64) (float64, error) {
	if h <= 0 || omega <= 0 {
		return 0, fmt.Errorf("analysis: bad group-delay params ω=%g h=%g", omega, h)
	}
	up, err := ac.Transfer(source, outNode, omega*(1+h))
	if err != nil {
		return 0, err
	}
	dn, err := ac.Transfer(source, outNode, omega*(1-h))
	if err != nil {
		return 0, err
	}
	dphi := cmplx.Phase(up) - cmplx.Phase(dn)
	// Unwrap the single step.
	for dphi > math.Pi {
		dphi -= 2 * math.Pi
	}
	for dphi < -math.Pi {
		dphi += 2 * math.Pi
	}
	return -dphi / (2 * h * omega), nil
}

// UnwrapPhase returns the response's phase in radians with 2π jumps
// removed, assuming adjacent sweep points differ by less than π.
func UnwrapPhase(r Response) []float64 {
	out := make([]float64, len(r.Points))
	var offset float64
	for i, p := range r.Points {
		ph := cmplx.Phase(p.H) + offset
		if i > 0 {
			for ph-out[i-1] > math.Pi {
				ph -= 2 * math.Pi
				offset -= 2 * math.Pi
			}
			for ph-out[i-1] < -math.Pi {
				ph += 2 * math.Pi
				offset += 2 * math.Pi
			}
		}
		out[i] = ph
	}
	return out
}
