// Package analysis performs small-signal AC analysis of circuits via
// Modified Nodal Analysis: for each angular frequency ω it stamps the
// complex system G(jω)·x = b and solves for the node-voltage phasors.
// This is the fault-simulation engine behind the fault dictionary.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/numeric"
)

// ErrNoSolution wraps solver failures (singular MNA systems, typically a
// floating subcircuit or an unstable ideal-opamp configuration).
var ErrNoSolution = errors.New("analysis: MNA system has no solution")

// AC is a reusable AC analyzer for one circuit. Assembling fixes the
// variable ordering once; each Solve stamps and factors at one frequency.
type AC struct {
	sys  *circuit.System
	circ *circuit.Circuit
}

// NewAC assembles the circuit and returns an analyzer.
func NewAC(c *circuit.Circuit) (*AC, error) {
	sys, err := c.Assemble()
	if err != nil {
		return nil, err
	}
	return &AC{sys: sys, circ: c}, nil
}

// Size returns the MNA system order.
func (ac *AC) Size() int { return ac.sys.Size() }

// Solution holds the phasor solution at one frequency.
type Solution struct {
	// Omega is the angular frequency in rad/s.
	Omega float64
	ac    *AC
	x     []complex128
}

// SolveAt solves the network at angular frequency omega (rad/s).
// omega may be 0 (DC); inductors short and capacitors open naturally in
// the stamps.
func (ac *AC) SolveAt(omega float64) (*Solution, error) {
	if omega < 0 {
		return nil, fmt.Errorf("analysis: negative frequency %g", omega)
	}
	if math.IsNaN(omega) || math.IsInf(omega, 0) {
		return nil, fmt.Errorf("analysis: non-finite frequency %g", omega)
	}
	s := complex(0, omega)
	a, b, err := ac.sys.StampAt(s)
	if err != nil {
		return nil, err
	}
	f, err := numeric.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("%w: at ω=%g: %v", ErrNoSolution, omega, err)
	}
	x, err := f.Solve(b)
	if err != nil {
		return nil, fmt.Errorf("%w: at ω=%g: %v", ErrNoSolution, omega, err)
	}
	return &Solution{Omega: omega, ac: ac, x: x}, nil
}

// NodeVoltage returns the phasor voltage of a named node (0 for ground).
func (sol *Solution) NodeVoltage(node string) (complex128, error) {
	i, err := sol.ac.sys.NodeIndex(node)
	if err != nil {
		return 0, err
	}
	if i < 0 {
		return 0, nil
	}
	return sol.x[i], nil
}

// BranchCurrent returns the auxiliary branch current of a named element
// (voltage sources, inductors, VCVS/CCVS, ideal opamps).
func (sol *Solution) BranchCurrent(elem string) (complex128, error) {
	i, ok := sol.ac.sys.BranchIndex(elem)
	if !ok {
		return 0, fmt.Errorf("analysis: element %q carries no branch-current variable", elem)
	}
	return sol.x[i], nil
}

// VoltageBetween returns V(a) - V(b).
func (sol *Solution) VoltageBetween(a, b string) (complex128, error) {
	va, err := sol.NodeVoltage(a)
	if err != nil {
		return 0, err
	}
	vb, err := sol.NodeVoltage(b)
	if err != nil {
		return 0, err
	}
	return va - vb, nil
}

// TransferPoint is one point of a frequency response.
type TransferPoint struct {
	// Omega is the angular frequency in rad/s.
	Omega float64
	// H is the complex transfer value V(out)/V(in-source amplitude).
	H complex128
}

// Mag returns |H|.
func (p TransferPoint) Mag() float64 { return cmplx.Abs(p.H) }

// MagDb returns |H| in dB.
func (p TransferPoint) MagDb() float64 { return numeric.Db(p.Mag()) }

// PhaseDeg returns the phase in degrees.
func (p TransferPoint) PhaseDeg() float64 { return cmplx.Phase(p.H) * 180 / math.Pi }

// Response is a sampled frequency response.
type Response struct {
	Points []TransferPoint
}

// Omegas returns the frequency axis.
func (r Response) Omegas() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.Omega
	}
	return out
}

// Mags returns |H| per point.
func (r Response) Mags() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.Mag()
	}
	return out
}

// MagsDb returns |H| in dB per point.
func (r Response) MagsDb() []float64 {
	out := make([]float64, len(r.Points))
	for i, p := range r.Points {
		out[i] = p.MagDb()
	}
	return out
}

// PeakMag returns the maximum |H| and the ω at which it occurs.
func (r Response) PeakMag() (float64, float64) {
	var best float64
	var at float64
	for _, p := range r.Points {
		if m := p.Mag(); m > best {
			best, at = m, p.Omega
		}
	}
	return best, at
}

// Transfer computes V(outNode)/amplitude(source) at angular frequency
// omega for the named independent voltage source.
func (ac *AC) Transfer(source, outNode string, omega float64) (complex128, error) {
	sol, err := ac.SolveAt(omega)
	if err != nil {
		return 0, err
	}
	e, ok := ac.circ.Element(source)
	if !ok {
		return 0, fmt.Errorf("analysis: no source element %q", source)
	}
	vs, ok := e.(*circuit.VSource)
	if !ok {
		return 0, fmt.Errorf("analysis: element %q is not a voltage source", source)
	}
	if vs.Amplitude == 0 {
		return 0, fmt.Errorf("analysis: source %q has zero amplitude", source)
	}
	vout, err := sol.NodeVoltage(outNode)
	if err != nil {
		return 0, err
	}
	return vout / vs.Amplitude, nil
}

// Sweep computes the transfer function at each angular frequency in
// omegas.
func (ac *AC) Sweep(source, outNode string, omegas []float64) (Response, error) {
	resp := Response{Points: make([]TransferPoint, 0, len(omegas))}
	for _, w := range omegas {
		h, err := ac.Transfer(source, outNode, w)
		if err != nil {
			return Response{}, err
		}
		resp.Points = append(resp.Points, TransferPoint{Omega: w, H: h})
	}
	return resp, nil
}

// LogSweep sweeps n points logarithmically from wLo to wHi (rad/s).
func (ac *AC) LogSweep(source, outNode string, wLo, wHi float64, n int) (Response, error) {
	if wLo <= 0 || wHi <= wLo {
		return Response{}, fmt.Errorf("analysis: bad log sweep bounds [%g, %g]", wLo, wHi)
	}
	return ac.Sweep(source, outNode, numeric.Logspace(wLo, wHi, n))
}

// Sensitivity estimates d|H(jω)| / d(value) for one component by central
// finite difference with relative step h (e.g. 1e-4). It clones the
// circuit, so the original is untouched.
func Sensitivity(c *circuit.Circuit, comp, source, outNode string, omega, h float64) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("analysis: nonpositive step %g", h)
	}
	base, err := c.Value(comp)
	if err != nil {
		return 0, err
	}
	magAt := func(scale float64) (float64, error) {
		cc := c.Clone()
		if err := cc.SetValue(comp, base*scale); err != nil {
			return 0, err
		}
		ac, err := NewAC(cc)
		if err != nil {
			return 0, err
		}
		hval, err := ac.Transfer(source, outNode, omega)
		if err != nil {
			return 0, err
		}
		return cmplx.Abs(hval), nil
	}
	up, err := magAt(1 + h)
	if err != nil {
		return 0, err
	}
	dn, err := magAt(1 - h)
	if err != nil {
		return 0, err
	}
	return (up - dn) / (2 * h * base), nil
}

// RelativeSensitivity returns the dimensionless sensitivity
// S = (x/|H|)·d|H|/dx, the standard filter-design measure used to rank
// which components most move the response at a frequency.
func RelativeSensitivity(c *circuit.Circuit, comp, source, outNode string, omega, h float64) (float64, error) {
	s, err := Sensitivity(c, comp, source, outNode, omega, h)
	if err != nil {
		return 0, err
	}
	base, err := c.Value(comp)
	if err != nil {
		return 0, err
	}
	ac, err := NewAC(c)
	if err != nil {
		return 0, err
	}
	hval, err := ac.Transfer(source, outNode, omega)
	if err != nil {
		return 0, err
	}
	mag := cmplx.Abs(hval)
	if mag == 0 {
		return 0, fmt.Errorf("analysis: zero response magnitude at ω=%g", omega)
	}
	return s * base / mag, nil
}
