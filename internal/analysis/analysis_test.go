package analysis

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/numeric"
)

// divider builds V1—R1—out—R2—gnd.
func divider(r1, r2 float64) *circuit.Circuit {
	c := circuit.New("divider")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", r1))
	c.MustAdd(circuit.NewResistor("R2", "out", "0", r2))
	return c
}

func TestResistiveDivider(t *testing.T) {
	ac, err := NewAC(divider(1000, 3000))
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-0.75) > 1e-12 {
		t.Fatalf("H = %v, want 0.75", h)
	}
	// Dividers are frequency-flat.
	h2, _ := ac.Transfer("V1", "out", 1e6)
	if cmplx.Abs(h-h2) > 1e-12 {
		t.Fatal("divider response is not flat")
	}
}

func TestRCLowpass(t *testing.T) {
	// R = 1k, C = 1µ → ωc = 1000 rad/s.
	c := circuit.New("rc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", 1000))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-6))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form H = 1/(1 + jωRC).
	for _, w := range []float64{1, 100, 1000, 10000, 1e6} {
		h, err := ac.Transfer("V1", "out", w)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 + complex(0, w*1e-3))
		if cmplx.Abs(h-want) > 1e-9 {
			t.Fatalf("ω=%g: H = %v, want %v", w, h, want)
		}
	}
	// -3 dB at the corner.
	h, _ := ac.Transfer("V1", "out", 1000)
	if db := numeric.Db(cmplx.Abs(h)); math.Abs(db+3.0103) > 0.001 {
		t.Fatalf("corner = %g dB, want -3.01", db)
	}
}

func TestDCBehaviour(t *testing.T) {
	// At ω=0 a capacitor opens and an inductor shorts.
	c := circuit.New("dc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "mid", 100))
	c.MustAdd(circuit.NewInductor("L1", "mid", "out", 1))
	c.MustAdd(circuit.NewResistor("R2", "out", "0", 100))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-6))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ac.SolveAt(0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sol.NodeVoltage("out")
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(v-0.5) > 1e-12 {
		t.Fatalf("DC out = %v, want 0.5", v)
	}
	// Branch current of the source: 1 V over 200 Ω.
	i, err := sol.BranchCurrent("V1")
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(i+0.005) > 1e-12 { // current flows out of + terminal: -5 mA by MNA sign convention
		t.Fatalf("source current = %v, want -5e-3", i)
	}
}

func TestRLCResonance(t *testing.T) {
	// Series RLC: R=10, L=1m, C=1µ → ω0 = 1/sqrt(LC) ≈ 31623 rad/s.
	c := circuit.New("rlc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "a", 10))
	c.MustAdd(circuit.NewInductor("L1", "a", "b", 1e-3))
	c.MustAdd(circuit.NewCapacitor("C1", "b", "0", 1e-6))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	w0 := 1 / math.Sqrt(1e-3*1e-6)
	// At resonance the LC impedances cancel; all of Vin is across R, and
	// the cap voltage peaks at Q·Vin with Q = ω0 L / R = sqrt(L/C)/R.
	q := math.Sqrt(1e-3/1e-6) / 10
	h, err := ac.Transfer("V1", "b", w0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmplx.Abs(h)-q) > 1e-6*q {
		t.Fatalf("resonant gain = %v, want Q = %v", cmplx.Abs(h), q)
	}
}

func TestIdealOpAmpInverting(t *testing.T) {
	// Inverting amp: gain -R2/R1 = -4.
	c := circuit.New("inv")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "sum", 1000))
	c.MustAdd(circuit.NewResistor("R2", "sum", "out", 4000))
	c.MustAdd(circuit.NewIdealOpAmp("U1", "0", "sum", "out"))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 100)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h+4) > 1e-9 {
		t.Fatalf("H = %v, want -4", h)
	}
	// Virtual ground holds.
	sol, _ := ac.SolveAt(100)
	vsum, _ := sol.NodeVoltage("sum")
	if cmplx.Abs(vsum) > 1e-9 {
		t.Fatalf("summing node = %v, want 0", vsum)
	}
}

func TestVCVSAmplifier(t *testing.T) {
	c := circuit.New("vcvs")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("Rin", "in", "0", 1e6))
	c.MustAdd(circuit.NewVCVS("E1", "out", "0", "in", "0", 7))
	c.MustAdd(circuit.NewResistor("Rload", "out", "0", 1000))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h-7) > 1e-9 {
		t.Fatalf("H = %v, want 7", h)
	}
}

func TestVCCSIntoLoad(t *testing.T) {
	// gm = 2 mS into 1k load → gain 2 (inverting by current direction).
	c := circuit.New("vccs")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("Rin", "in", "0", 1e6))
	c.MustAdd(circuit.NewVCCS("G1", "out", "0", "in", "0", 2e-3))
	c.MustAdd(circuit.NewResistor("RL", "out", "0", 1000))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h+2) > 1e-9 {
		t.Fatalf("H = %v, want -2", h)
	}
}

func TestCCVSAndCCCS(t *testing.T) {
	// V1 drives 1 V across R1=1k → source branch current -1 mA.
	// CCVS with R=2000 mirrors it: Vout = 2000 · I(V1) = -2 V.
	c := circuit.New("ccvs")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "0", 1000))
	c.MustAdd(circuit.NewCCVS("H1", "out", "0", "V1", 2000))
	c.MustAdd(circuit.NewResistor("RL", "out", "0", 1000))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer("V1", "out", 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h+2) > 1e-9 {
		t.Fatalf("CCVS H = %v, want -2", h)
	}

	// CCCS: gain 3 of the same control current into RL=1k.
	c2 := circuit.New("cccs")
	c2.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c2.MustAdd(circuit.NewResistor("R1", "in", "0", 1000))
	c2.MustAdd(circuit.NewCCCS("F1", "out", "0", "V1", 3))
	c2.MustAdd(circuit.NewResistor("RL", "out", "0", 1000))
	ac2, err := NewAC(c2)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ac2.Transfer("V1", "out", 10)
	if err != nil {
		t.Fatal(err)
	}
	// I(V1) = -1 mA; CCCS pushes 3·I from out to 0, so V(out) = +3 V...
	// sign fixed by the stamp convention; magnitude must be 3.
	if math.Abs(cmplx.Abs(h2)-3) > 1e-9 {
		t.Fatalf("CCCS |H| = %v, want 3", cmplx.Abs(h2))
	}
}

func TestSweepAndLogSweep(t *testing.T) {
	ac, err := NewAC(divider(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ac.Sweep("V1", "out", []float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 3 {
		t.Fatalf("points = %d", len(resp.Points))
	}
	for _, p := range resp.Points {
		if math.Abs(p.Mag()-0.5) > 1e-12 {
			t.Fatalf("mag = %v, want 0.5", p.Mag())
		}
	}
	if got := resp.Omegas(); got[2] != 100 {
		t.Fatalf("omegas = %v", got)
	}
	if got := resp.MagsDb(); math.Abs(got[0]+6.0206) > 0.001 {
		t.Fatalf("db = %v, want about -6.02", got[0])
	}
	lr, err := ac.LogSweep("V1", "out", 0.1, 1000, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Points) != 41 || lr.Points[0].Omega != 0.1 || lr.Points[40].Omega != 1000 {
		t.Fatal("log sweep endpoints wrong")
	}
	if _, err := ac.LogSweep("V1", "out", -1, 10, 5); err == nil {
		t.Fatal("bad bounds accepted")
	}
	peak, at := lr.PeakMag()
	if math.Abs(peak-0.5) > 1e-12 || at != 0.1 {
		t.Fatalf("peak = %v at %v", peak, at)
	}
}

func TestTransferErrors(t *testing.T) {
	ac, err := NewAC(divider(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Transfer("nope", "out", 1); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := ac.Transfer("R1", "out", 1); err == nil {
		t.Fatal("non-source element accepted")
	}
	if _, err := ac.Transfer("V1", "ghost", 1); err == nil {
		t.Fatal("missing out node accepted")
	}
	if _, err := ac.SolveAt(-1); err == nil {
		t.Fatal("negative frequency accepted")
	}
	if _, err := ac.SolveAt(math.NaN()); err == nil {
		t.Fatal("NaN frequency accepted")
	}
}

func TestSingularSystemReported(t *testing.T) {
	// An ideal opamp with its + input driven and no feedback: the MNA
	// system is structurally singular.
	c := circuit.New("bad")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewIdealOpAmp("U1", "in", "in", "out"))
	c.MustAdd(circuit.NewResistor("RL", "out", "0", 1))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ac.SolveAt(1)
	if err == nil {
		t.Fatal("singular system solved")
	}
	if !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestSensitivity(t *testing.T) {
	// Divider H = R2/(R1+R2); dH/dR2 = R1/(R1+R2)² = 0.25/2000... with
	// R1 = R2 = 1k: d|H|/dR2 = 1000/(2000²) = 2.5e-4 per ohm.
	c := divider(1000, 1000)
	s, err := Sensitivity(c, "R2", "V1", "out", 10, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2.5e-4) > 1e-8 {
		t.Fatalf("sensitivity = %v, want 2.5e-4", s)
	}
	// Relative sensitivity: S = (R2/|H|)·d|H|/dR2 = (1000/0.5)·2.5e-4 = 0.5.
	rs, err := RelativeSensitivity(c, "R2", "V1", "out", 10, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs-0.5) > 1e-6 {
		t.Fatalf("relative sensitivity = %v, want 0.5", rs)
	}
	if _, err := Sensitivity(c, "R2", "V1", "out", 10, 0); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := Sensitivity(c, "zz", "V1", "out", 10, 1e-5); err == nil {
		t.Fatal("missing component accepted")
	}
}

func TestResponseAccessors(t *testing.T) {
	ac, err := NewAC(divider(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if ac.Size() != 3 { // 2 nodes + source branch
		t.Fatalf("Size = %d, want 3", ac.Size())
	}
	resp, err := ac.Sweep("V1", "out", []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	mags := resp.Mags()
	if len(mags) != 2 || math.Abs(mags[0]-0.5) > 1e-12 {
		t.Fatalf("Mags = %v", mags)
	}
	// A resistive divider has zero phase.
	if ph := resp.Points[0].PhaseDeg(); math.Abs(ph) > 1e-9 {
		t.Fatalf("PhaseDeg = %g, want 0", ph)
	}
	// An RC at the corner has -45°.
	rc := circuit.New("rc")
	rc.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	rc.MustAdd(circuit.NewResistor("R1", "in", "out", 1000))
	rc.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-6))
	acrc, err := NewAC(rc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := acrc.Sweep("V1", "out", []float64{1000})
	if err != nil {
		t.Fatal(err)
	}
	if ph := r2.Points[0].PhaseDeg(); math.Abs(ph+45) > 1e-6 {
		t.Fatalf("corner phase = %g, want -45", ph)
	}
}

func TestVoltageBetween(t *testing.T) {
	ac, err := NewAC(divider(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ac.SolveAt(5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sol.VoltageBetween("in", "out")
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(v-0.5) > 1e-12 {
		t.Fatalf("V(in,out) = %v, want 0.5", v)
	}
	if _, err := sol.VoltageBetween("in", "ghost"); err == nil {
		t.Fatal("ghost node accepted")
	}
	if _, err := sol.BranchCurrent("R1"); err == nil {
		t.Fatal("R1 branch current should not exist")
	}
}
