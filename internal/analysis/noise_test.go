package analysis

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestOutputNoiseSingleResistor(t *testing.T) {
	// A resistor to ground observed directly: PSD = 4kTR (the full
	// open-circuit thermal noise), independent of frequency.
	c := circuit.New("r")
	c.MustAdd(circuit.NewISource("Ibias", "out", "0", 0)) // keeps the node referenced
	c.MustAdd(circuit.NewResistor("R1", "out", "0", 1000))
	c.MustAdd(circuit.NewResistor("R1b", "out", "0", 1e12)) // near-open companion
	contrib, total, err := OutputNoise(c, "out", 100, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * Boltzmann * 300 * 1000
	if math.Abs(total-want) > 0.01*want {
		t.Fatalf("total PSD = %g, want %g", total, want)
	}
	if len(contrib) != 2 {
		t.Fatalf("contributions = %d", len(contrib))
	}
}

func TestOutputNoiseDividerSplit(t *testing.T) {
	// Two equal resistors forming a divider from a (silenced) source:
	// each contributes (4kTR)·(1/2)² and the total equals the parallel
	// combination's 4kT(R/2).
	c := circuit.New("div")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("Ra", "in", "out", 2000))
	c.MustAdd(circuit.NewResistor("Rb", "out", "0", 2000))
	contrib, total, err := OutputNoise(c, "out", 50, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * Boltzmann * 300 * 1000 // 2k ∥ 2k = 1k
	if math.Abs(total-want) > 0.01*want {
		t.Fatalf("total = %g, want %g", total, want)
	}
	if math.Abs(contrib[0].PSD-contrib[1].PSD) > 0.01*contrib[0].PSD {
		t.Fatalf("equal resistors contribute unequally: %+v", contrib)
	}
}

func TestOutputNoiseRCRolloff(t *testing.T) {
	// R with shunt C: output noise density falls as 1/(1+(ωRC)²).
	c := circuit.New("rc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", 1000))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-6))
	_, lo, err := OutputNoise(c, "out", 10, 300)
	if err != nil {
		t.Fatal(err)
	}
	_, hi, err := OutputNoise(c, "out", 1e5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if hi > lo/100 {
		t.Fatalf("noise density did not roll off: %g vs %g", lo, hi)
	}
	// In-band density ≈ 4kTR.
	want := 4 * Boltzmann * 300 * 1000
	if math.Abs(lo-want) > 0.05*want {
		t.Fatalf("in-band density %g, want %g", lo, want)
	}
}

func TestNoiseRMSkTC(t *testing.T) {
	// The classic kT/C result: total integrated noise of an RC low-pass
	// is sqrt(kT/C) regardless of R. C = 1 nF at 300 K → ~2.03 µV.
	c := circuit.New("ktc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", 1000))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-9))
	// Corner at 1e6 rad/s; integrate well past it.
	rms, err := NoiseRMS(c, "out", 1, 1e9, 300, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(Boltzmann * 300 / 1e-9)
	if math.Abs(rms-want) > 0.05*want {
		t.Fatalf("RMS = %g, want kT/C = %g", rms, want)
	}
}

func TestOutputNoiseValidation(t *testing.T) {
	c := circuit.New("v")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "in", "0", 1))
	if _, _, err := OutputNoise(c, "in", 1, 300); err == nil {
		t.Fatal("resistorless circuit accepted")
	}
	c2 := circuit.New("r")
	c2.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c2.MustAdd(circuit.NewResistor("R1", "in", "0", 1))
	if _, _, err := OutputNoise(c2, "in", 1, 0); err == nil {
		t.Fatal("zero temperature accepted")
	}
	if _, err := NoiseRMS(c2, "in", -1, 10, 300, 10); err == nil {
		t.Fatal("bad band accepted")
	}
}

func TestGroupDelayRC(t *testing.T) {
	// RC lowpass: τg(ω) = RC/(1+(ωRC)²). At the corner: RC/2.
	c := circuit.New("rc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", 1000))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-6))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := ac.GroupDelay("V1", "out", 1000, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-3 / 2
	if math.Abs(gd-want) > 1e-6 {
		t.Fatalf("group delay = %g, want %g", gd, want)
	}
	if _, err := ac.GroupDelay("V1", "out", -1, 1e-4); err == nil {
		t.Fatal("negative ω accepted")
	}
	if _, err := ac.GroupDelay("V1", "out", 1000, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestUnwrapPhase(t *testing.T) {
	// A second-order system's phase runs 0 → -π continuously; the raw
	// atan2 values wrap. Unwrapped phase must be monotone decreasing.
	c := circuit.New("rlc")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "a", 0.2))
	c.MustAdd(circuit.NewInductor("L1", "a", "out", 1))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1))
	ac, err := NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ac.LogSweep("V1", "out", 0.01, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	ph := UnwrapPhase(resp)
	for i := 1; i < len(ph); i++ {
		if ph[i] > ph[i-1]+1e-9 {
			t.Fatalf("unwrapped phase not monotone at %d: %g -> %g", i, ph[i-1], ph[i])
		}
	}
	if math.Abs(ph[0]) > 0.05 {
		t.Fatalf("low-frequency phase = %g, want ~0", ph[0])
	}
	if math.Abs(ph[len(ph)-1]+math.Pi) > 0.05 {
		t.Fatalf("high-frequency phase = %g, want ~-π", ph[len(ph)-1])
	}
}
