// Package obs is the repository's observability kernel: fixed-bucket
// lock-free latency histograms rendered in the Prometheus text format,
// and lightweight wall-clock spans with a nil-safe no-op default. It is
// deliberately small and allocation-conscious — the serving layer
// records into histograms from request handlers and batcher workers
// without locks, and the engine's hot path pays only a nil pointer
// check when no tracer is installed.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBounds is the fixed bucket layout every Histogram uses: upper
// bounds in seconds, ascending, spanning sub-millisecond engine solves
// through multi-minute GA entry builds. An implicit +Inf bucket catches
// the rest. A fixed layout keeps the Histogram's zero value ready to
// use (no constructor, no lazy initialization race) and makes every
// rendered series directly comparable.
var LatencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// numBuckets counts the finite buckets plus the +Inf overflow bucket.
const numBuckets = len(LatencyBounds) + 1

// Histogram is a fixed-bucket latency histogram with lock-free atomic
// buckets. The zero value is ready to use; any number of goroutines may
// Observe concurrently with renders. The total observation count is
// derived from the buckets at snapshot time (not kept as a separate
// counter), so a rendered _count always equals the sum of its rendered
// buckets even under concurrent recording.
type Histogram struct {
	buckets  [numBuckets]atomic.Int64
	sumNanos atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one latency given in seconds. Negative or NaN
// values clamp into the first bucket (clock adjustments mid-measurement
// must not corrupt the distribution's shape).
func (h *Histogram) ObserveSeconds(s float64) {
	if math.IsNaN(s) || s < 0 {
		s = 0
	}
	i := 0
	for i < len(LatencyBounds) && s > LatencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNanos.Add(int64(s * 1e9))
}

// Bucket is one cumulative histogram bucket of a snapshot: the count of
// observations at or below the upper bound LE (seconds).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot is a point-in-time view of a Histogram, JSON-ready. Buckets
// are cumulative and cover the finite bounds only; Count is the grand
// total including the +Inf overflow bucket, so Count ≥ the last
// bucket's count and equals the Prometheus _count series.
type Snapshot struct {
	Buckets []Bucket `json:"buckets"`
	Count   int64    `json:"count"`
	// Sum is the total observed time in seconds (the _sum series).
	Sum float64 `json:"sum_seconds"`
	// P50/P90/P99 are interpolated quantile estimates (seconds), zero
	// when the histogram is empty. Estimates, not exact order
	// statistics: linear interpolation inside the winning bucket, the
	// same model promQL's histogram_quantile uses.
	P50 float64 `json:"p50_seconds"`
	P90 float64 `json:"p90_seconds"`
	P99 float64 `json:"p99_seconds"`
}

// Snapshot captures the histogram's current state. Buckets are read
// once each; the total is derived from that read, so the snapshot's
// internal invariants (cumulative monotone, Count == sum of raw
// buckets) hold even while writers race the read.
func (h *Histogram) Snapshot() Snapshot {
	var raw [numBuckets]int64
	for i := range raw {
		raw[i] = h.buckets[i].Load()
	}
	s := Snapshot{
		Buckets: make([]Bucket, len(LatencyBounds)),
		Sum:     float64(h.sumNanos.Load()) / 1e9,
	}
	var cum int64
	for i, b := range LatencyBounds {
		cum += raw[i]
		s.Buckets[i] = Bucket{LE: b, Count: cum}
	}
	s.Count = cum + raw[numBuckets-1]
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) in seconds from the
// snapshot's buckets, interpolating linearly inside the winning bucket.
// Observations in the +Inf bucket clamp to the largest finite bound; an
// empty snapshot returns 0.
func (s Snapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := p * float64(s.Count)
	var prevCum int64
	prevLE := 0.0
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			in := b.Count - prevCum
			if in <= 0 {
				return b.LE
			}
			frac := (rank - float64(prevCum)) / float64(in)
			return prevLE + (b.LE-prevLE)*frac
		}
		prevCum, prevLE = b.Count, b.LE
	}
	// The rank lands in the +Inf bucket: clamp to the largest bound.
	return LatencyBounds[len(LatencyBounds)-1]
}

// WritePrometheus renders the histogram as a Prometheus histogram
// family (name_bucket{le=...}, name_sum, name_count) from one
// snapshot.
func (h *Histogram) WritePrometheus(w io.Writer, name, help string) {
	WriteSnapshotPrometheus(w, name, help, h.Snapshot())
}

// WriteSnapshotPrometheus renders an already-captured snapshot — the
// path for callers that render several series from one consistent
// capture.
func WriteSnapshotPrometheus(w io.Writer, name, help string, s Snapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, b := range s.Buckets {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b.LE, 'g', -1, 64), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, s.Sum, name, s.Count)
}

// Span is one finished timed region of a trace: wall-clock start offset
// from the tracer's creation and duration, both in milliseconds.
type Span struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"duration_ms"`
}

// Tracer collects spans. The nil *Tracer is the no-op default: every
// method is nil-safe, StartSpan on a nil tracer returns a handle whose
// End does nothing and allocates nothing — the contract that lets the
// engine's per-frequency hot path carry instrumentation sites at zero
// steady-state cost.
type Tracer struct {
	origin time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTracer starts an empty trace; span offsets are measured from now.
func NewTracer() *Tracer { return &Tracer{origin: time.Now()} }

// SpanHandle is an in-flight span. The zero handle (from a nil tracer)
// is valid and End on it is a no-op.
type SpanHandle struct {
	t     *Tracer
	name  string
	begin time.Time
}

// StartSpan opens a span. Nil-safe: a nil tracer returns the no-op
// handle without reading the clock.
func (t *Tracer) StartSpan(name string) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, begin: time.Now()}
}

// End closes the span and records it on its tracer. Safe from any
// goroutine; a no-op on the zero handle.
func (sp SpanHandle) End() {
	if sp.t == nil {
		return
	}
	now := time.Now()
	s := Span{
		Name:    sp.name,
		StartMS: float64(sp.begin.Sub(sp.t.origin)) / float64(time.Millisecond),
		DurMS:   float64(now.Sub(sp.begin)) / float64(time.Millisecond),
	}
	sp.t.mu.Lock()
	sp.t.spans = append(sp.t.spans, s)
	sp.t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in End order. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// traceDump is the JSON shape WriteJSON emits.
type traceDump struct {
	Spans []Span `json:"spans"`
}

// WriteJSON dumps the trace as {"spans": [...]}, one object per span in
// End order. Nil-safe (writes an empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceDump{Spans: t.Spans()})
}
