package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndCount(t *testing.T) {
	var h Histogram
	h.ObserveSeconds(0.00005) // first bucket (le 0.0001)
	h.ObserveSeconds(0.0001)  // boundary: still first bucket (le is inclusive)
	h.ObserveSeconds(0.003)   // le 0.005
	h.ObserveSeconds(999)     // +Inf overflow
	h.ObserveSeconds(-1)      // clamps to first bucket
	h.ObserveSeconds(math.NaN())

	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if got := s.Buckets[0].Count; got != 4 {
		t.Errorf("bucket le=0.0001 = %d, want 4", got)
	}
	// Cumulative monotone, and the last finite bucket excludes the overflow.
	prev := int64(0)
	for _, b := range s.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket le=%g count %d < previous %d (not monotone)", b.LE, b.Count, prev)
		}
		prev = b.Count
	}
	if last := s.Buckets[len(s.Buckets)-1].Count; last != 5 {
		t.Errorf("last finite bucket = %d, want 5 (overflow excluded)", last)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 100 observations at ~2ms: every quantile must land in (0.001, 0.0025].
	for i := 0; i < 100; i++ {
		h.ObserveSeconds(0.002)
	}
	s := h.Snapshot()
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q := s.Quantile(p)
		if q <= 0.001 || q > 0.0025 {
			t.Errorf("Quantile(%g) = %g, want in (0.001, 0.0025]", p, q)
		}
	}
	if s.P50 != s.Quantile(0.5) {
		t.Errorf("P50 %g != Quantile(0.5) %g", s.P50, s.Quantile(0.5))
	}

	var empty Histogram
	if q := empty.Snapshot().Quantile(0.99); q != 0 {
		t.Errorf("empty Quantile = %g, want 0", q)
	}

	// All observations in overflow clamp to the largest finite bound.
	var over Histogram
	over.ObserveSeconds(500)
	if q := over.Snapshot().Quantile(0.5); q != LatencyBounds[len(LatencyBounds)-1] {
		t.Errorf("overflow Quantile = %g, want %g", q, LatencyBounds[len(LatencyBounds)-1])
	}
}

func TestHistogramPrometheusRender(t *testing.T) {
	var h Histogram
	h.ObserveSeconds(0.002)
	h.ObserveSeconds(3)

	var buf bytes.Buffer
	h.WritePrometheus(&buf, "test_seconds", "test latency")
	out := buf.String()

	for _, want := range []string{
		"# HELP test_seconds test latency",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.0025"} 1`,
		`test_seconds_bucket{le="+Inf"} 2`,
		"test_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// _sum ≈ 3.002 seconds.
	if !strings.Contains(out, "test_seconds_sum 3.002") {
		t.Errorf("render missing sum ~3.002:\n%s", out)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	var h Histogram
	avg := testing.AllocsPerRun(1000, func() {
		h.ObserveSeconds(0.004)
	})
	if avg != 0 {
		t.Fatalf("ObserveSeconds allocates %.1f allocs/op, want 0", avg)
	}
}

func TestNilTracerNoOpZeroAlloc(t *testing.T) {
	var tr *Tracer
	avg := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("noop")
		sp.End()
	})
	if avg != 0 {
		t.Fatalf("nil-tracer span allocates %.1f allocs/op, want 0", avg)
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans() = %v, want nil", got)
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("stage.one")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.StartSpan("stage.two").End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "stage.one" || spans[1].Name != "stage.two" {
		t.Errorf("span names = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].DurMS <= 0 {
		t.Errorf("stage.one duration %g ms, want > 0", spans[0].DurMS)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(dump.Spans) != 2 {
		t.Fatalf("JSON has %d spans, want 2", len(dump.Spans))
	}
}

// TestConcurrentHistogramAndSpans hammers one histogram and one tracer
// from many goroutines while a reader renders snapshots — the shape the
// -race CI job pins.
func TestConcurrentHistogramAndSpans(t *testing.T) {
	var h Histogram
	tr := NewTracer()
	const workers, perWorker = 8, 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.ObserveSeconds(0.001)
				tr.StartSpan("hammer").End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s := h.Snapshot()
			prev := int64(0)
			for _, b := range s.Buckets {
				if b.Count < prev {
					t.Errorf("concurrent snapshot not monotone at le=%g", b.LE)
					return
				}
				prev = b.Count
			}
			var buf bytes.Buffer
			WriteSnapshotPrometheus(&buf, "hammer_seconds", "h", s)
			_ = tr.Spans()
		}
	}()
	wg.Wait()
	<-done

	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Fatalf("final Count = %d, want %d", got, workers*perWorker)
	}
	if got := len(tr.Spans()); got != workers*perWorker {
		t.Fatalf("final span count = %d, want %d", got, workers*perWorker)
	}
}
