package montecarlo

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuits"
	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/trajectory"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, func(int) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := Run(1, nil); err == nil {
		t.Fatal("nil trial function accepted")
	}
	boom := errors.New("boom")
	if _, err := Run(3, func(i int) (float64, error) {
		if i == 2 {
			return 0, boom
		}
		return 1, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := Run(1, func(int) (float64, error) { return math.NaN(), nil }); err == nil {
		t.Fatal("NaN outcome accepted")
	}
}

func TestStatsKnownValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	i := 0
	s, err := Run(5, func(int) (float64, error) {
		v := vals[i]
		i++
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if math.Abs(s.Std()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %g, want %g", s.Std(), math.Sqrt(2.5))
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %g", s.Quantile(0.5))
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := s.Quantile(0.25); got != 2 {
		t.Fatalf("Q1 = %g, want 2", got)
	}
	mean, hw := s.MeanCI95()
	if mean != 3 || hw <= 0 {
		t.Fatalf("CI = %g ± %g", mean, hw)
	}
}

func TestSingleSampleStd(t *testing.T) {
	s, err := Run(1, func(int) (float64, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.Std() != 0 {
		t.Fatalf("single-sample Std = %g", s.Std())
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		s, err := Run(n, func(int) (float64, error) { return rng.NormFloat64(), nil })
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev-1e-12 || v < s.Min()-1e-12 || v > s.Max()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagnosisYield(t *testing.T) {
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trajectory.Build(nil, d, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := diagnosis.New(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	// Clean boards (σ = 0): yield must be 1.
	s, err := DiagnosisYield(d, dg, fault.Tolerance{Sigma: 0}, 0.25, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 1 {
		t.Fatalf("clean yield = %g, want 1", s.Mean())
	}
	// Heavy tolerance: yield drops but stays a probability.
	s2, err := DiagnosisYield(d, dg, fault.Tolerance{Sigma: 0.05}, 0.25, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Mean() < 0 || s2.Mean() > 1 {
		t.Fatalf("yield = %g", s2.Mean())
	}
	if s2.Mean() > s.Mean() {
		t.Fatalf("5%% tolerance yield %g exceeds clean yield %g", s2.Mean(), s.Mean())
	}
	// Validation.
	if _, err := DiagnosisYield(d, dg, fault.Tolerance{}, 0.25, 5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := DiagnosisYield(d, dg, fault.Tolerance{}, 0, 5, rng); err == nil {
		t.Fatal("zero deviation accepted")
	}
}
