package montecarlo

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/circuits"
	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/rerr"
	"repro/internal/trajectory"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, func(int) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := Run(1, nil); err == nil {
		t.Fatal("nil trial function accepted")
	}
	boom := errors.New("boom")
	if _, err := Run(3, func(i int) (float64, error) {
		if i == 2 {
			return 0, boom
		}
		return 1, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := Run(1, func(int) (float64, error) { return math.NaN(), nil }); err == nil {
		t.Fatal("NaN outcome accepted")
	}
}

func TestStatsKnownValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	i := 0
	s, err := Run(5, func(int) (float64, error) {
		v := vals[i]
		i++
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if math.Abs(s.Std()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %g, want %g", s.Std(), math.Sqrt(2.5))
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %g", s.Quantile(0.5))
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := s.Quantile(0.25); got != 2 {
		t.Fatalf("Q1 = %g, want 2", got)
	}
	mean, hw := s.MeanCI95()
	if mean != 3 || hw <= 0 {
		t.Fatalf("CI = %g ± %g", mean, hw)
	}
}

// Empty Stats (every trial failed under RunCollect) must report the
// documented NaN everywhere instead of the old silent NaN/±Inf mix.
func TestEmptyStatsDocumentedNaN(t *testing.T) {
	boom := errors.New("boom")
	s, failures, err := RunCollect(3, func(int) (float64, error) { return 0, boom })
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 3 {
		t.Fatalf("failures = %d, want 3", len(failures))
	}
	if s.N() != 0 {
		t.Fatalf("N = %d, want 0", s.N())
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean(), "Std": s.Std(), "Min": s.Min(),
		"Max": s.Max(), "Quantile": s.Quantile(0.5),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %g, want NaN", name, v)
		}
	}
	mean, hw := s.MeanCI95()
	if !math.IsNaN(mean) || !math.IsNaN(hw) {
		t.Errorf("empty MeanCI95 = %g ± %g, want NaN ± NaN", mean, hw)
	}
}

func TestRunCollect(t *testing.T) {
	boom := errors.New("singular")
	s, failures, err := RunCollect(5, func(i int) (float64, error) {
		switch i {
		case 1:
			return 0, boom
		case 3:
			return math.Inf(1), nil
		}
		return float64(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d, want 3", s.N())
	}
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want 2", failures)
	}
	if failures[0].Trial != 1 || !errors.Is(failures[0].Err, boom) {
		t.Fatalf("failure[0] = %+v", failures[0])
	}
	if failures[1].Trial != 3 || failures[1].Err == nil {
		t.Fatalf("failure[1] = %+v", failures[1])
	}
	if got := s.Mean(); got != 2 { // (0+2+4)/3
		t.Fatalf("Mean = %g, want 2", got)
	}
	if _, _, err := RunCollect(0, func(int) (float64, error) { return 0, nil }); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, _, err := RunCollect(1, nil); err == nil {
		t.Fatal("nil trial function accepted")
	}
}

// RunParallel must produce bit-identical Stats at every worker count,
// and must report the lowest-index trial error regardless of
// scheduling.
func TestRunParallelDeterministic(t *testing.T) {
	trial := func(i int) (float64, error) {
		rng := rand.New(rand.NewSource(42 + int64(i)))
		return rng.NormFloat64(), nil
	}
	ref, err := Run(100, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, runtime.NumCPU(), 0} {
		s, err := RunParallel(context.Background(), 100, workers, trial)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if s.N() != ref.N() || s.Mean() != ref.Mean() || s.Std() != ref.Std() {
			t.Fatalf("workers=%d: stats differ from sequential Run", workers)
		}
	}
	boom := errors.New("boom")
	_, err = RunParallel(context.Background(), 64, 8, func(i int) (float64, error) {
		if i == 7 || i == 50 {
			return 0, boom
		}
		return 1, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Lowest-index offender is reported deterministically.
	if want := "trial 7"; err != nil && !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want mention of %s", err, want)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 10000, 4, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, rerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d)", n)
	}
	if err := ForEach(context.Background(), 0, 1, func(int) error { return nil }); err == nil {
		t.Fatal("zero trials accepted")
	}
	if err := ForEach(context.Background(), 1, 1, nil); err == nil {
		t.Fatal("nil function accepted")
	}
	// nil context is allowed (background semantics).
	var hits atomic.Int64
	if err := ForEach(nil, 8, 3, func(int) error { hits.Add(1); return nil }); err != nil { //nolint:staticcheck
		t.Fatal(err)
	}
	if hits.Load() != 8 {
		t.Fatalf("ran %d trials, want 8", hits.Load())
	}
}

func TestSingleSampleStd(t *testing.T) {
	s, err := Run(1, func(int) (float64, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.Std() != 0 {
		t.Fatalf("single-sample Std = %g", s.Std())
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		s, err := Run(n, func(int) (float64, error) { return rng.NormFloat64(), nil })
		if err != nil {
			return false
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := s.Quantile(q)
			if v < prev-1e-12 || v < s.Min()-1e-12 || v > s.Max()+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagnosisYield(t *testing.T) {
	cut := circuits.NFLowpass7()
	u, err := fault.PaperUniverse(cut.Passives)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dictionary.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trajectory.Build(nil, d, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := diagnosis.New(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	// Clean boards (σ = 0): yield must be 1.
	s, err := DiagnosisYield(d, dg, fault.Tolerance{Sigma: 0}, 0.25, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 1 {
		t.Fatalf("clean yield = %g, want 1", s.Mean())
	}
	// Heavy tolerance: yield drops but stays a probability.
	s2, err := DiagnosisYield(d, dg, fault.Tolerance{Sigma: 0.05}, 0.25, 14, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Mean() < 0 || s2.Mean() > 1 {
		t.Fatalf("yield = %g", s2.Mean())
	}
	if s2.Mean() > s.Mean() {
		t.Fatalf("5%% tolerance yield %g exceeds clean yield %g", s2.Mean(), s.Mean())
	}
	// Validation.
	if _, err := DiagnosisYield(d, dg, fault.Tolerance{}, 0.25, 5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := DiagnosisYield(d, dg, fault.Tolerance{}, 0, 5, rng); err == nil {
		t.Fatal("zero deviation accepted")
	}
}
