// Package montecarlo provides the small statistics engine behind the
// tolerance/yield experiments: run a stochastic trial function many
// times, accumulate outcome statistics, and estimate quantiles — plus a
// diagnosis-yield convenience that ties it to the fault-trajectory
// pipeline.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
	"repro/internal/rerr"
)

// Stats summarizes the outcomes of a Monte-Carlo run.
type Stats struct {
	values []float64
	sorted bool
}

// Run executes trials sequentially (the trial function owns any RNG; a
// deterministic seed there makes the whole run reproducible) and
// collects the outcomes.
func Run(trials int, f func(trial int) (float64, error)) (*Stats, error) {
	if trials < 1 {
		return nil, fmt.Errorf("montecarlo: trials %d < 1", trials)
	}
	if f == nil {
		return nil, fmt.Errorf("montecarlo: nil trial function")
	}
	s := &Stats{values: make([]float64, 0, trials)}
	for i := 0; i < trials; i++ {
		v, err := f(i)
		if err != nil {
			return nil, fmt.Errorf("montecarlo: trial %d: %w", i, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("montecarlo: trial %d produced non-finite value", i)
		}
		s.values = append(s.values, v)
	}
	return s, nil
}

// N returns the number of collected outcomes.
func (s *Stats) N() int { return len(s.values) }

// Mean returns the sample mean, or NaN when no outcomes were collected
// (an empty Stats from RunCollect where every trial failed).
func (s *Stats) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the sample standard deviation (n−1 denominator; 0 for a
// single sample, NaN when empty).
func (s *Stats) Std() float64 {
	n := len(s.values)
	if n == 0 {
		return math.NaN()
	}
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.values {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// Min returns the smallest outcome, or NaN when no outcomes were
// collected (previously this silently returned +Inf).
func (s *Stats) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	mn := math.Inf(1)
	for _, v := range s.values {
		mn = math.Min(mn, v)
	}
	return mn
}

// Max returns the largest outcome, or NaN when no outcomes were
// collected (previously this silently returned −Inf).
func (s *Stats) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	mx := math.Inf(-1)
	for _, v := range s.values {
		mx = math.Max(mx, v)
	}
	return mx
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation of
// the order statistics.
func (s *Stats) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[i] + frac*(s.values[i+1]-s.values[i])
}

// MeanCI95 returns the mean and its ±1.96·σ/√n half-width — the normal
// 95% confidence interval, adequate for the repository's trial counts.
// Both are NaN when no outcomes were collected.
func (s *Stats) MeanCI95() (mean, halfWidth float64) {
	if len(s.values) == 0 {
		return math.NaN(), math.NaN()
	}
	mean = s.Mean()
	halfWidth = 1.96 * s.Std() / math.Sqrt(float64(len(s.values)))
	return mean, halfWidth
}

// Failure records one failed trial from RunCollect.
type Failure struct {
	// Trial is the zero-based trial index that failed.
	Trial int
	// Err is the trial's error (a synthesized one for non-finite
	// outcomes).
	Err error
}

// RunCollect executes trials sequentially like Run, but a failed trial
// (error or non-finite outcome) is recorded instead of aborting the
// whole run — one singular perturbed matrix no longer kills a
// 10k-sample build. The returned Stats holds the successful outcomes
// only; callers deciding whether enough trials survived should inspect
// len(failures) (an all-failed run returns an empty Stats whose
// accessors report documented NaN, not an error).
func RunCollect(trials int, f func(trial int) (float64, error)) (*Stats, []Failure, error) {
	if trials < 1 {
		return nil, nil, fmt.Errorf("montecarlo: trials %d < 1", trials)
	}
	if f == nil {
		return nil, nil, fmt.Errorf("montecarlo: nil trial function")
	}
	s := &Stats{values: make([]float64, 0, trials)}
	var failures []Failure
	for i := 0; i < trials; i++ {
		v, err := f(i)
		if err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
			err = fmt.Errorf("montecarlo: trial %d produced non-finite value", i)
		}
		if err != nil {
			failures = append(failures, Failure{Trial: i, Err: err})
			continue
		}
		s.values = append(s.values, v)
	}
	return s, failures, nil
}

// ForEach runs f(trial) for every trial ∈ [0, trials) on a pool of
// context-aware workers (workers ≤ 0 means NumCPU; the pool never
// exceeds the trial count). Trials are dispatched in index order but
// complete in any order — f must be safe for concurrent calls and
// should write results into per-trial slots so the overall outcome is
// deterministic at every worker count. The first trial error stops
// dispatch and is returned; a canceled context returns an error
// wrapping rerr.ErrCanceled.
func ForEach(ctx context.Context, trials, workers int, f func(trial int) error) error {
	if trials < 1 {
		return fmt.Errorf("montecarlo: trials %d < 1", trials)
	}
	if f == nil {
		return fmt.Errorf("montecarlo: nil trial function")
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > trials {
		workers = trials
	}
	if workers == 1 {
		for i := 0; i < trials; i++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return rerr.Canceled(err)
				}
			}
			if err := f(i); err != nil {
				return fmt.Errorf("montecarlo: trial %d: %w", i, err)
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						fail(rerr.Canceled(err))
						return
					}
				}
				if err := f(i); err != nil {
					fail(fmt.Errorf("montecarlo: trial %d: %w", i, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunParallel is Run with context-aware parallel workers: outcomes land
// in per-trial slots and are folded into the Stats in trial order, so
// the result is bit-identical at every worker count. Like Run, the
// whole run fails on the first trial error or non-finite outcome (the
// lowest-index offender is reported, independent of scheduling).
func RunParallel(ctx context.Context, trials, workers int, f func(trial int) (float64, error)) (*Stats, error) {
	if f == nil {
		return nil, fmt.Errorf("montecarlo: nil trial function")
	}
	vals := make([]float64, trials)
	errs := make([]error, trials)
	if err := ForEach(ctx, trials, workers, func(i int) error {
		vals[i], errs[i] = f(i)
		return nil // per-trial errors are ranked by index below
	}); err != nil {
		return nil, err
	}
	s := &Stats{values: make([]float64, 0, trials)}
	for i, v := range vals {
		if errs[i] != nil {
			return nil, fmt.Errorf("montecarlo: trial %d: %w", i, errs[i])
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("montecarlo: trial %d produced non-finite value", i)
		}
		s.values = append(s.values, v)
	}
	return s, nil
}

// DiagnosisYield estimates the probability that a single hard fault is
// correctly named when every other component carries manufacturing
// tolerance: one trial perturbs the golden circuit (σ = tol.Sigma),
// injects a fault with the given deviation on a cyclically chosen
// component, and scores 1 for a correct top-1 diagnosis. The returned
// Stats' Mean is the yield.
func DiagnosisYield(d *dictionary.Dictionary, dg *diagnosis.Diagnoser, tol fault.Tolerance, deviation float64, trials int, rng *rand.Rand) (*Stats, error) {
	if rng == nil {
		return nil, fmt.Errorf("montecarlo: nil rng")
	}
	if deviation == 0 {
		return nil, fmt.Errorf("montecarlo: zero fault deviation")
	}
	comps := d.Universe().Components
	omegas := dg.Map().Omegas
	return Run(trials, func(i int) (float64, error) {
		comp := comps[i%len(comps)]
		board, err := tol.Perturb(d.Golden(), rng, comp)
		if err != nil {
			return 0, err
		}
		if err := board.ScaleValue(comp, 1+deviation); err != nil {
			return 0, err
		}
		sig, err := d.CircuitSignature(board, omegas)
		if err != nil {
			return 0, err
		}
		res, err := dg.Diagnose(geometry.VecN(sig))
		if err != nil {
			return 0, err
		}
		if res.Best().Component == comp {
			return 1, nil
		}
		return 0, nil
	})
}
