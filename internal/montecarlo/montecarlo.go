// Package montecarlo provides the small statistics engine behind the
// tolerance/yield experiments: run a stochastic trial function many
// times, accumulate outcome statistics, and estimate quantiles — plus a
// diagnosis-yield convenience that ties it to the fault-trajectory
// pipeline.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/geometry"
)

// Stats summarizes the outcomes of a Monte-Carlo run.
type Stats struct {
	values []float64
	sorted bool
}

// Run executes trials sequentially (the trial function owns any RNG; a
// deterministic seed there makes the whole run reproducible) and
// collects the outcomes.
func Run(trials int, f func(trial int) (float64, error)) (*Stats, error) {
	if trials < 1 {
		return nil, fmt.Errorf("montecarlo: trials %d < 1", trials)
	}
	if f == nil {
		return nil, fmt.Errorf("montecarlo: nil trial function")
	}
	s := &Stats{values: make([]float64, 0, trials)}
	for i := 0; i < trials; i++ {
		v, err := f(i)
		if err != nil {
			return nil, fmt.Errorf("montecarlo: trial %d: %w", i, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("montecarlo: trial %d produced non-finite value", i)
		}
		s.values = append(s.values, v)
	}
	return s, nil
}

// N returns the number of collected outcomes.
func (s *Stats) N() int { return len(s.values) }

// Mean returns the sample mean.
func (s *Stats) Mean() float64 {
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Std returns the sample standard deviation (n−1 denominator; 0 for a
// single sample).
func (s *Stats) Std() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.values {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// Min returns the smallest outcome.
func (s *Stats) Min() float64 {
	mn := math.Inf(1)
	for _, v := range s.values {
		mn = math.Min(mn, v)
	}
	return mn
}

// Max returns the largest outcome.
func (s *Stats) Max() float64 {
	mx := math.Inf(-1)
	for _, v := range s.values {
		mx = math.Max(mx, v)
	}
	return mx
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation of
// the order statistics.
func (s *Stats) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[i] + frac*(s.values[i+1]-s.values[i])
}

// MeanCI95 returns the mean and its ±1.96·σ/√n half-width — the normal
// 95% confidence interval, adequate for the repository's trial counts.
func (s *Stats) MeanCI95() (mean, halfWidth float64) {
	mean = s.Mean()
	halfWidth = 1.96 * s.Std() / math.Sqrt(float64(len(s.values)))
	return mean, halfWidth
}

// DiagnosisYield estimates the probability that a single hard fault is
// correctly named when every other component carries manufacturing
// tolerance: one trial perturbs the golden circuit (σ = tol.Sigma),
// injects a fault with the given deviation on a cyclically chosen
// component, and scores 1 for a correct top-1 diagnosis. The returned
// Stats' Mean is the yield.
func DiagnosisYield(d *dictionary.Dictionary, dg *diagnosis.Diagnoser, tol fault.Tolerance, deviation float64, trials int, rng *rand.Rand) (*Stats, error) {
	if rng == nil {
		return nil, fmt.Errorf("montecarlo: nil rng")
	}
	if deviation == 0 {
		return nil, fmt.Errorf("montecarlo: zero fault deviation")
	}
	comps := d.Universe().Components
	omegas := dg.Map().Omegas
	return Run(trials, func(i int) (float64, error) {
		comp := comps[i%len(comps)]
		board, err := tol.Perturb(d.Golden(), rng, comp)
		if err != nil {
			return 0, err
		}
		if err := board.ScaleValue(comp, 1+deviation); err != nil {
			return 0, err
		}
		sig, err := d.CircuitSignature(board, omegas)
		if err != nil {
			return 0, err
		}
		res, err := dg.Diagnose(geometry.VecN(sig))
		if err != nil {
			return 0, err
		}
		if res.Best().Component == comp {
			return 1, nil
		}
		return 0, nil
	})
}
