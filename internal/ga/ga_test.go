package ga

import (
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// sphere is a smooth unimodal test problem: maximize 1/(1+Σ(x-c)²).
func sphere(center float64) Problem {
	return Problem{
		Bounds: []Interval{{-5, 5}, {-5, 5}, {-5, 5}},
		Fitness: func(g []float64) float64 {
			var s float64
			for _, v := range g {
				d := v - center
				s += d * d
			}
			return 1 / (1 + s)
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{PopSize: 1, Generations: 1, MutSigma: 0.1},
		{PopSize: 4, Generations: 0, MutSigma: 0.1},
		{PopSize: 4, Generations: 1, ReproductionRate: 1.5, MutSigma: 0.1},
		{PopSize: 4, Generations: 1, MutationRate: -0.1, MutSigma: 0.1},
		{PopSize: 4, Generations: 1, Elitism: 4, MutSigma: 0.1},
		{PopSize: 4, Generations: 1, MutSigma: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestPaperConfigMatchesPaper(t *testing.T) {
	c := PaperConfig()
	if c.PopSize != 128 || c.Generations != 15 || c.ReproductionRate != 0.5 ||
		c.MutationRate != 0.4 || c.Selection != Roulette {
		t.Fatalf("paper config drifted: %+v", c)
	}
}

func TestRunInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{PopSize: 8, Generations: 2, MutSigma: 0.1}
	if _, err := Run(nil, Problem{}, cfg, rng); err == nil {
		t.Fatal("empty bounds accepted")
	}
	p := sphere(0)
	p.Fitness = nil
	if _, err := Run(nil, p, cfg, rng); err == nil {
		t.Fatal("nil fitness accepted")
	}
	p2 := sphere(0)
	p2.Bounds[0] = Interval{3, 3}
	if _, err := Run(nil, p2, cfg, rng); err == nil {
		t.Fatal("degenerate interval accepted")
	}
	if _, err := Run(nil, sphere(0), cfg, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	badCfg := cfg
	badCfg.PopSize = 1
	if _, err := Run(nil, sphere(0), badCfg, rng); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestConvergesOnSphere(t *testing.T) {
	cfg := Config{
		PopSize: 60, Generations: 40, ReproductionRate: 0.5,
		MutationRate: 0.4, Selection: Roulette, Elitism: 1, MutSigma: 0.1,
	}
	res, err := Run(nil, sphere(1.5), cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 0.9 {
		t.Fatalf("best fitness %g, want >= 0.9", res.BestFitness)
	}
	for _, g := range res.Best {
		if math.Abs(g-1.5) > 0.5 {
			t.Fatalf("best genes %v, want near 1.5", res.Best)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := PaperConfig()
	cfg.PopSize = 24
	cfg.Generations = 6
	run := func() *Result {
		r, err := Run(nil, sphere(-2), cfg, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.BestFitness != b.BestFitness || !reflect.DeepEqual(a.Best, b.Best) {
		t.Fatal("same seed produced different results")
	}
	if len(a.History) != len(b.History) {
		t.Fatal("history lengths differ")
	}
	c, err := Run(nil, sphere(-2), cfg, rand.New(rand.NewSource(100)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Best, c.Best) && a.BestFitness == c.BestFitness {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

func TestHistoryShape(t *testing.T) {
	cfg := Config{PopSize: 16, Generations: 8, ReproductionRate: 0.5,
		MutationRate: 0.3, Elitism: 1, MutSigma: 0.1}
	res, err := Run(nil, sphere(0), cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 8 {
		t.Fatalf("history = %d generations, want 8", len(res.History))
	}
	for i, st := range res.History {
		if st.Generation != i {
			t.Fatalf("generation %d labeled %d", i, st.Generation)
		}
		if st.Best < st.Mean || st.Mean < st.Worst {
			t.Fatalf("gen %d: best %g >= mean %g >= worst %g violated", i, st.Best, st.Mean, st.Worst)
		}
		if len(st.BestGenes) != 3 {
			t.Fatalf("gen %d: best genes %v", i, st.BestGenes)
		}
	}
	if res.Evaluations < cfg.PopSize {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
}

func TestElitismMonotoneBest(t *testing.T) {
	cfg := Config{PopSize: 20, Generations: 15, ReproductionRate: 0.6,
		MutationRate: 0.8, Elitism: 1, MutSigma: 0.3}
	res, err := Run(nil, sphere(2), cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Best < res.History[i-1].Best-1e-12 {
			t.Fatalf("best regressed at gen %d: %g -> %g", i, res.History[i-1].Best, res.History[i].Best)
		}
	}
}

func TestSelectionMethodsAllConverge(t *testing.T) {
	for _, m := range []SelectionMethod{Roulette, Tournament, Rank} {
		cfg := Config{PopSize: 40, Generations: 30, ReproductionRate: 0.5,
			MutationRate: 0.4, Selection: m, Elitism: 1, MutSigma: 0.15}
		res, err := Run(nil, sphere(0.5), cfg, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.BestFitness < 0.8 {
			t.Errorf("%v: best fitness %g", m, res.BestFitness)
		}
	}
}

func TestCrossoverMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1, 1, 1}
	for _, m := range []CrossoverMethod{Arithmetic, SinglePoint, Uniform} {
		child := crossover(a, b, m, rng)
		if len(child) != 4 {
			t.Fatalf("%v: child len %d", m, len(child))
		}
		for _, g := range child {
			if g < 0 || g > 1 {
				t.Fatalf("%v: child gene %g outside convex hull", m, g)
			}
		}
	}
}

func TestMutationRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bounds := []Interval{{0, 1}, {10, 20}}
	for trial := 0; trial < 500; trial++ {
		g := []float64{0.5, 15}
		mutate(g, bounds, 0.5, rng)
		for i, b := range bounds {
			if g[i] < b.Lo || g[i] > b.Hi {
				t.Fatalf("gene %d = %g escaped [%g,%g]", i, g[i], b.Lo, b.Hi)
			}
		}
	}
}

func TestZeroFitnessDegeneracy(t *testing.T) {
	// All-zero fitness must not panic or loop: roulette degrades to
	// uniform selection.
	p := Problem{
		Bounds:  []Interval{{0, 1}},
		Fitness: func([]float64) float64 { return 0 },
	}
	cfg := Config{PopSize: 10, Generations: 3, ReproductionRate: 0.5,
		MutationRate: 0.5, Elitism: 1, MutSigma: 0.1}
	res, err := Run(nil, p, cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != 0 {
		t.Fatalf("best = %g", res.BestFitness)
	}
}

func TestNegativeAndNaNFitnessSanitized(t *testing.T) {
	var calls atomic.Int64 // fitness runs on concurrent workers
	p := Problem{
		Bounds: []Interval{{0, 1}},
		Fitness: func([]float64) float64 {
			if calls.Add(1)%2 == 0 {
				return math.NaN()
			}
			return -5
		},
	}
	cfg := Config{PopSize: 8, Generations: 2, ReproductionRate: 0.5,
		MutationRate: 0.5, Elitism: 1, MutSigma: 0.1}
	res, err := Run(nil, p, cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != 0 {
		t.Fatalf("sanitized best = %g, want 0", res.BestFitness)
	}
}

func TestSelectionPrefersFit(t *testing.T) {
	// With one dominant individual, roulette should pick it most often.
	pop := []individual{
		{genes: []float64{1}, fitness: 100, scored: true},
		{genes: []float64{2}, fitness: 1, scored: true},
		{genes: []float64{3}, fitness: 1, scored: true},
	}
	rng := rand.New(rand.NewSource(6))
	sel := newSelector(pop, Roulette, rng)
	hits := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if sel.pick().genes[0] == 1 {
			hits++
		}
	}
	if hits < trials*80/102 {
		t.Fatalf("dominant picked %d/%d times", hits, trials)
	}
}

func TestMethodStrings(t *testing.T) {
	if Roulette.String() != "roulette" || Tournament.String() != "tournament" || Rank.String() != "rank" {
		t.Fatal("selection strings wrong")
	}
	if Arithmetic.String() != "arithmetic" || SinglePoint.String() != "single-point" || Uniform.String() != "uniform" {
		t.Fatal("crossover strings wrong")
	}
	if SelectionMethod(9).String() == "" || CrossoverMethod(9).String() == "" {
		t.Fatal("unknown enums must still render")
	}
}

// Property: the best genome always lies within bounds.
func TestQuickBestWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{PopSize: 10, Generations: 4, ReproductionRate: 0.5,
			MutationRate: 0.6, Elitism: 1, MutSigma: 0.2}
		res, err := Run(nil, sphere(0), cfg, rng)
		if err != nil {
			return false
		}
		for _, g := range res.Best {
			if g < -5 || g > 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
