// Package ga implements the real-coded genetic algorithm the paper uses
// to optimize test vectors. The paper's configuration (§2.4): 128
// individuals, 15 generations, 50% reproduction rate, 40% mutation rate,
// roulette-wheel selection, and the generation count as the stop
// criterion. The fitness function is supplied by the caller (for the
// paper's problem: 1/(1+I) with I the trajectory intersection count).
//
// The engine is deterministic for a fixed seed: all stochastic decisions
// draw from one *rand.Rand in a fixed order, while fitness evaluations —
// which consume no randomness — may fan out over worker goroutines.
package ga

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rerr"
)

// Interval bounds one gene.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Clamp restricts v to the interval.
func (iv Interval) Clamp(v float64) float64 {
	return math.Max(iv.Lo, math.Min(iv.Hi, v))
}

// Problem is a bounded maximization problem over real gene vectors.
type Problem struct {
	// Bounds gives one interval per gene; its length is the genome size.
	Bounds []Interval
	// Fitness scores a genome; it must be finite and >= 0 (roulette
	// selection interprets fitness as probability mass). Larger is
	// better. It is called from Config.Workers goroutines concurrently
	// and must be safe for that. May be nil when BatchFitness is set.
	Fitness func(genes []float64) float64
	// BatchFitness, when non-nil, takes precedence over Fitness and
	// scores a whole generation in one call: it must set out[i] to the
	// fitness of genomes[i] for every i (same contract as Fitness:
	// finite, >= 0, larger is better; NaN and negative values are
	// clamped to 0 either way). It is called once per generation from
	// the Run goroutine with only the genomes that need scoring; how the
	// implementation parallelizes internally is its own business — per-
	// genome results must not depend on evaluation order, which keeps
	// runs deterministic for a fixed seed at any parallelism. Batching
	// lets the evaluator amortize per-call setup (scratch buffers,
	// per-worker solver state) across the generation instead of paying
	// it per individual.
	BatchFitness func(genomes [][]float64, out []float64)
}

// SelectionMethod names a parent-selection strategy.
type SelectionMethod int

const (
	// Roulette is fitness-proportional selection, the paper's "mining
	// method".
	Roulette SelectionMethod = iota
	// Tournament selects the best of 2 random individuals.
	Tournament
	// Rank is linear rank-based selection, robust to fitness scaling.
	Rank
)

func (s SelectionMethod) String() string {
	switch s {
	case Roulette:
		return "roulette"
	case Tournament:
		return "tournament"
	case Rank:
		return "rank"
	default:
		return fmt.Sprintf("SelectionMethod(%d)", int(s))
	}
}

// CrossoverMethod names a recombination operator.
type CrossoverMethod int

const (
	// Arithmetic blends parents gene-wise with a random weight.
	Arithmetic CrossoverMethod = iota
	// SinglePoint swaps tails after a random cut.
	SinglePoint
	// Uniform swaps each gene with probability 1/2.
	Uniform
)

func (c CrossoverMethod) String() string {
	switch c {
	case Arithmetic:
		return "arithmetic"
	case SinglePoint:
		return "single-point"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("CrossoverMethod(%d)", int(c))
	}
}

// Config holds the GA hyperparameters.
type Config struct {
	// PopSize is the population size (paper: 128).
	PopSize int
	// Generations is the stop criterion (paper: 15).
	Generations int
	// ReproductionRate is the fraction of each new generation produced
	// by crossover (paper: 0.5); the rest are selected survivors.
	ReproductionRate float64
	// MutationRate is the per-individual mutation probability
	// (paper: 0.4).
	MutationRate float64
	// Selection picks the parent-selection strategy (paper: Roulette).
	Selection SelectionMethod
	// Crossover picks the recombination operator.
	Crossover CrossoverMethod
	// Elitism preserves the best n individuals unchanged each
	// generation.
	Elitism int
	// MutSigma is the Gaussian mutation step as a fraction of each
	// gene's interval width.
	MutSigma float64
	// Workers bounds concurrent fitness evaluations; 0 means one worker
	// per CPU (runtime.NumCPU()). The worker count never affects results:
	// fitness evaluations consume no randomness and each worker writes
	// only its own population slot, so runs are deterministic for a fixed
	// seed at any parallelism.
	Workers int
	// Progress, when non-nil, is called once per generation (from the
	// Run goroutine, after the generation's statistics are computed).
	// It is a hook for progress streaming, not a paper parameter.
	Progress func(GenStats)
}

// PaperConfig returns the configuration of the paper's §2.4 (plus
// single-individual elitism so the reported best never regresses, and a
// 10% Gaussian mutation step, which the paper leaves unspecified).
// Workers is left at 0 (one worker per CPU); this cannot perturb results
// for a fixed seed — see Config.Workers.
func PaperConfig() Config {
	return Config{
		PopSize:          128,
		Generations:      15,
		ReproductionRate: 0.5,
		MutationRate:     0.4,
		Selection:        Roulette,
		Crossover:        Arithmetic,
		Elitism:          1,
		MutSigma:         0.1,
	}
}

// Validate reports configuration errors; they wrap rerr.ErrBadConfig.
func (c Config) Validate() error {
	if c.PopSize < 2 {
		return fmt.Errorf("ga: %w: population size %d < 2", rerr.ErrBadConfig, c.PopSize)
	}
	if c.Generations < 1 {
		return fmt.Errorf("ga: %w: generations %d < 1", rerr.ErrBadConfig, c.Generations)
	}
	if c.ReproductionRate < 0 || c.ReproductionRate > 1 {
		return fmt.Errorf("ga: %w: reproduction rate %g outside [0,1]", rerr.ErrBadConfig, c.ReproductionRate)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("ga: %w: mutation rate %g outside [0,1]", rerr.ErrBadConfig, c.MutationRate)
	}
	if c.Elitism < 0 || c.Elitism >= c.PopSize {
		return fmt.Errorf("ga: %w: elitism %d outside [0, popsize)", rerr.ErrBadConfig, c.Elitism)
	}
	if c.MutSigma <= 0 {
		return fmt.Errorf("ga: %w: mutation sigma %g must be positive", rerr.ErrBadConfig, c.MutSigma)
	}
	return nil
}

// GenStats summarizes one generation. The JSON tags give persisted GA
// histories (see the artifact envelope) a stable schema.
type GenStats struct {
	Generation  int       `json:"generation"`
	Best        float64   `json:"best"`
	Mean        float64   `json:"mean"`
	Worst       float64   `json:"worst"`
	BestGenes   []float64 `json:"best_genes"`
	Evaluations int       `json:"evaluations"` // cumulative fitness evaluations so far
}

// Result is the outcome of a GA run.
type Result struct {
	// Best is the best genome ever seen.
	Best []float64
	// BestFitness is its fitness.
	BestFitness float64
	// History has one entry per generation.
	History []GenStats
	// Evaluations counts total fitness calls.
	Evaluations int
}

type individual struct {
	genes   []float64
	fitness float64
	scored  bool
}

// Run executes the GA. The rng drives every stochastic choice; pass
// rand.New(rand.NewSource(seed)) for reproducibility.
//
// The context is checked at every generation boundary and, inside a
// generation, before every fitness evaluation: a canceled context stops
// the run within one in-flight evaluation per worker. The returned error
// then wraps both rerr.ErrCanceled and the context's own error. A nil
// context is treated as context.Background(). Cancellation cannot perturb
// results: an uncanceled run evaluates exactly what it always did.
func Run(ctx context.Context, p Problem, cfg Config, rng *rand.Rand) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(p.Bounds) == 0 {
		return nil, fmt.Errorf("ga: %w: empty genome bounds", rerr.ErrBadConfig)
	}
	for i, b := range p.Bounds {
		if !(b.Lo < b.Hi) || math.IsNaN(b.Lo) || math.IsNaN(b.Hi) {
			return nil, fmt.Errorf("ga: %w: bad bounds for gene %d: [%g, %g]", rerr.ErrBadConfig, i, b.Lo, b.Hi)
		}
	}
	if p.Fitness == nil && p.BatchFitness == nil {
		return nil, fmt.Errorf("ga: %w: nil fitness function", rerr.ErrBadConfig)
	}
	if rng == nil {
		return nil, fmt.Errorf("ga: %w: nil rng", rerr.ErrBadConfig)
	}

	pop := make([]individual, cfg.PopSize)
	for i := range pop {
		pop[i] = individual{genes: randomGenome(p.Bounds, rng)}
	}

	res := &Result{}
	evals := 0
	for gen := 0; gen < cfg.Generations; gen++ {
		n, err := evaluate(ctx, pop, p, cfg.Workers)
		evals += n
		if err != nil {
			return nil, err
		}
		sortByFitness(pop)

		stats := summarize(pop, gen, evals)
		res.History = append(res.History, stats)
		if pop[0].fitness > res.BestFitness || res.Best == nil {
			res.Best = append([]float64(nil), pop[0].genes...)
			res.BestFitness = pop[0].fitness
		}
		if cfg.Progress != nil {
			cfg.Progress(stats)
		}

		if gen == cfg.Generations-1 {
			break
		}
		pop = nextGeneration(pop, p, cfg, rng)
	}
	res.Evaluations = evals
	return res, nil
}

func randomGenome(bounds []Interval, rng *rand.Rand) []float64 {
	g := make([]float64, len(bounds))
	for i, b := range bounds {
		g[i] = b.Lo + rng.Float64()*b.Width()
	}
	return g
}

// evaluate scores all unscored individuals, returning how many fitness
// evaluations it made. With BatchFitness set, the whole generation goes
// through one batched call; otherwise Fitness fans out over workers.
// Worker goroutines preserve determinism because each writes only its
// own index. Every worker checks the context before each fitness call,
// so a cancellation mid-generation stops the pool within one in-flight
// evaluation per worker; evaluate then reports rerr.Canceled after the
// pool drains.
func evaluate(ctx context.Context, pop []individual, p Problem, workers int) (int, error) {
	if p.BatchFitness != nil {
		return evaluateBatch(ctx, pop, p.BatchFitness)
	}
	fit := p.Fitness
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var count atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain without scoring so the producer never blocks
				}
				f := fit(pop[i].genes)
				if math.IsNaN(f) || f < 0 {
					f = 0 // defensive: keep roulette well-defined
				}
				pop[i].fitness = f
				pop[i].scored = true
				count.Add(1)
			}
		}()
	}
feed:
	for i := range pop {
		if pop[i].scored {
			continue
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return int(count.Load()), rerr.Canceled(err)
	}
	return int(count.Load()), nil
}

// evaluateBatch scores the generation's unscored individuals with one
// BatchFitness call. The context is checked before the call and again
// after it returns: a cancellation mid-batch (observed by the evaluator
// through the same context) discards the partial scores and reports
// rerr.Canceled, so a canceled run never commits half-scored
// generations. An uncanceled run scores exactly the individuals the
// per-individual path would — the two paths are interchangeable for a
// fixed seed.
func evaluateBatch(ctx context.Context, pop []individual, bf func([][]float64, []float64)) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, rerr.Canceled(err)
	}
	idxs := make([]int, 0, len(pop))
	genomes := make([][]float64, 0, len(pop))
	for i := range pop {
		if !pop[i].scored {
			idxs = append(idxs, i)
			genomes = append(genomes, pop[i].genes)
		}
	}
	if len(genomes) == 0 {
		return 0, nil
	}
	out := make([]float64, len(genomes))
	bf(genomes, out)
	if err := ctx.Err(); err != nil {
		return 0, rerr.Canceled(err)
	}
	for k, i := range idxs {
		f := out[k]
		if math.IsNaN(f) || f < 0 {
			f = 0 // defensive: keep roulette well-defined
		}
		pop[i].fitness = f
		pop[i].scored = true
	}
	return len(genomes), nil
}

func sortByFitness(pop []individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness > pop[j].fitness })
}

func summarize(pop []individual, gen, evals int) GenStats {
	var sum float64
	for _, ind := range pop {
		sum += ind.fitness
	}
	return GenStats{
		Generation:  gen,
		Best:        pop[0].fitness,
		Mean:        sum / float64(len(pop)),
		Worst:       pop[len(pop)-1].fitness,
		BestGenes:   append([]float64(nil), pop[0].genes...),
		Evaluations: evals,
	}
}

// nextGeneration builds the successor population: elites first, then
// crossover offspring (ReproductionRate of the population), then selected
// survivors; non-elites face mutation.
func nextGeneration(pop []individual, p Problem, cfg Config, rng *rand.Rand) []individual {
	n := len(pop)
	next := make([]individual, 0, n)

	for i := 0; i < cfg.Elitism; i++ {
		elite := individual{genes: append([]float64(nil), pop[i].genes...), fitness: pop[i].fitness, scored: true}
		next = append(next, elite)
	}

	sel := newSelector(pop, cfg.Selection, rng)
	offspring := int(math.Round(cfg.ReproductionRate * float64(n)))
	for len(next) < cfg.Elitism+offspring && len(next) < n {
		a := sel.pick()
		b := sel.pick()
		child := crossover(a.genes, b.genes, cfg.Crossover, rng)
		next = append(next, individual{genes: child})
	}
	for len(next) < n {
		s := sel.pick()
		next = append(next, individual{genes: append([]float64(nil), s.genes...), fitness: s.fitness, scored: true})
	}

	for i := cfg.Elitism; i < n; i++ {
		if rng.Float64() < cfg.MutationRate {
			mutate(next[i].genes, p.Bounds, cfg.MutSigma, rng)
			next[i].scored = false
		}
	}
	return next
}

type selector struct {
	pop    []individual
	method SelectionMethod
	rng    *rand.Rand
	cum    []float64 // cumulative fitness for roulette / rank mass
}

// newSelector precomputes the selection distribution over the (sorted)
// population.
func newSelector(pop []individual, m SelectionMethod, rng *rand.Rand) *selector {
	s := &selector{pop: pop, method: m, rng: rng}
	switch m {
	case Roulette:
		s.cum = make([]float64, len(pop))
		acc := 0.0
		for i, ind := range pop {
			acc += ind.fitness
			s.cum[i] = acc
		}
	case Rank:
		// pop is sorted best-first; rank mass n, n-1, ..., 1.
		s.cum = make([]float64, len(pop))
		acc := 0.0
		for i := range pop {
			acc += float64(len(pop) - i)
			s.cum[i] = acc
		}
	}
	return s
}

func (s *selector) pick() individual {
	n := len(s.pop)
	switch s.method {
	case Tournament:
		a := s.rng.Intn(n)
		b := s.rng.Intn(n)
		if s.pop[a].fitness >= s.pop[b].fitness {
			return s.pop[a]
		}
		return s.pop[b]
	default:
		total := s.cum[n-1]
		if total <= 0 {
			return s.pop[s.rng.Intn(n)] // degenerate: uniform
		}
		r := s.rng.Float64() * total
		i := sort.SearchFloat64s(s.cum, r)
		if i >= n {
			i = n - 1
		}
		return s.pop[i]
	}
}

func crossover(a, b []float64, m CrossoverMethod, rng *rand.Rand) []float64 {
	child := make([]float64, len(a))
	switch m {
	case SinglePoint:
		cut := rng.Intn(len(a))
		copy(child, a[:cut])
		copy(child[cut:], b[cut:])
	case Uniform:
		for i := range child {
			if rng.Float64() < 0.5 {
				child[i] = a[i]
			} else {
				child[i] = b[i]
			}
		}
	default: // Arithmetic
		for i := range child {
			w := rng.Float64()
			child[i] = w*a[i] + (1-w)*b[i]
		}
	}
	return child
}

func mutate(genes []float64, bounds []Interval, sigma float64, rng *rand.Rand) {
	// Perturb one random gene with a Gaussian step; with 20% probability
	// reset it uniformly instead, which preserves global exploration.
	i := rng.Intn(len(genes))
	b := bounds[i]
	if rng.Float64() < 0.2 {
		genes[i] = b.Lo + rng.Float64()*b.Width()
		return
	}
	genes[i] = b.Clamp(genes[i] + rng.NormFloat64()*sigma*b.Width())
}
