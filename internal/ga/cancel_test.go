package ga

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rerr"
)

// TestCancelStopsMidGeneration verifies the prompt-cancellation contract:
// once the context is canceled, each worker finishes at most the fitness
// evaluation it already has in flight, then the pool drains — it does NOT
// run the rest of the generation.
func TestCancelStopsMidGeneration(t *testing.T) {
	const popSize, workers = 64, 2
	var evals atomic.Int64
	inFlight := make(chan struct{}, popSize)
	gate := make(chan struct{})
	p := Problem{
		Bounds: []Interval{{0, 1}},
		Fitness: func([]float64) float64 {
			evals.Add(1)
			inFlight <- struct{}{}
			<-gate // slow fitness: blocks until the test releases it
			return 1
		},
	}
	cfg := Config{PopSize: popSize, Generations: 3, ReproductionRate: 0.5,
		MutationRate: 0.4, Elitism: 1, MutSigma: 0.1, Workers: workers}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Wait until both workers hold an evaluation, then cancel and
		// unblock everything.
		<-inFlight
		<-inFlight
		cancel()
		close(gate)
	}()

	res, err := Run(ctx, p, cfg, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, rerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// At most one in-flight evaluation per worker after cancel, plus the
	// ones that started before: far fewer than a full generation.
	if n := evals.Load(); n > 2*workers {
		t.Fatalf("%d evaluations ran after cancellation window, want <= %d", n, 2*workers)
	}
}

// TestDeadlineStopsAtGenerationBoundary exercises the per-generation
// checkpoint with an already-expired deadline.
func TestDeadlineStopsAtGenerationBoundary(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var evals atomic.Int64
	p := Problem{
		Bounds:  []Interval{{0, 1}},
		Fitness: func([]float64) float64 { evals.Add(1); return 1 },
	}
	cfg := Config{PopSize: 8, Generations: 5, ReproductionRate: 0.5,
		MutationRate: 0.4, Elitism: 1, MutSigma: 0.1, Workers: 2}
	_, err := Run(ctx, p, cfg, rand.New(rand.NewSource(1)))
	if !errors.Is(err, rerr.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	if evals.Load() != 0 {
		t.Fatalf("%d evaluations ran under an expired deadline", evals.Load())
	}
}

// TestProgressCallbackPerGeneration checks the per-generation progress
// hook fires in order with the generation's statistics.
func TestProgressCallbackPerGeneration(t *testing.T) {
	var seen []GenStats
	cfg := Config{PopSize: 12, Generations: 4, ReproductionRate: 0.5,
		MutationRate: 0.4, Elitism: 1, MutSigma: 0.1,
		Progress: func(st GenStats) { seen = append(seen, st) }}
	res, err := Run(nil, sphere(1), cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != cfg.Generations {
		t.Fatalf("progress fired %d times, want %d", len(seen), cfg.Generations)
	}
	for i, st := range seen {
		if st.Generation != i {
			t.Fatalf("event %d labeled generation %d", i, st.Generation)
		}
	}
	if seen[len(seen)-1].Best != res.History[len(res.History)-1].Best {
		t.Fatal("final progress event disagrees with history")
	}
}

// TestCancellationDoesNotPerturbResults: an uncanceled context must give
// bitwise-identical results to the nil-context path.
func TestCancellationDoesNotPerturbResults(t *testing.T) {
	cfg := PaperConfig()
	cfg.PopSize, cfg.Generations = 20, 5
	a, err := Run(nil, sphere(0.5), cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b, err := Run(ctx, sphere(0.5), cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatalf("live context changed results: %v vs %v", a.BestFitness, b.BestFitness)
	}
}
