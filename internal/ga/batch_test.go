package ga

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/rerr"
)

// batchOf wraps a problem's per-genome fitness as a BatchFitness hook.
func batchOf(p Problem) Problem {
	fit := p.Fitness
	p.Fitness = nil
	p.BatchFitness = func(genomes [][]float64, out []float64) {
		for i, g := range genomes {
			out[i] = fit(g)
		}
	}
	return p
}

// TestBatchFitnessMatchesPerIndividual: for a fixed seed, the
// generation-batched path must be bit-identical to the per-individual
// path — same history, same best, same evaluation count — at any worker
// count (workers only affect the per-individual path's parallelism).
func TestBatchFitnessMatchesPerIndividual(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := PaperConfig()
		cfg.PopSize, cfg.Generations, cfg.Workers = 24, 6, workers
		ref, err := Run(nil, sphere(1.5), cfg, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(nil, batchOf(sphere(1.5)), cfg, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		if got.BestFitness != ref.BestFitness || got.Evaluations != ref.Evaluations {
			t.Fatalf("workers=%d: batched (%v, %d evals) != per-individual (%v, %d evals)",
				workers, got.BestFitness, got.Evaluations, ref.BestFitness, ref.Evaluations)
		}
		if !reflect.DeepEqual(got.Best, ref.Best) {
			t.Fatalf("workers=%d: best genes differ: %v vs %v", workers, got.Best, ref.Best)
		}
		if !reflect.DeepEqual(got.History, ref.History) {
			t.Fatalf("workers=%d: histories differ", workers)
		}
	}
}

// TestBatchFitnessCalledOncePerGeneration: the hook must fire exactly
// Generations times, each call covering only the unscored individuals.
func TestBatchFitnessCalledOncePerGeneration(t *testing.T) {
	var calls atomic.Int64
	p := sphere(0)
	fit := p.Fitness
	p.Fitness = nil
	p.BatchFitness = func(genomes [][]float64, out []float64) {
		calls.Add(1)
		for i, g := range genomes {
			out[i] = fit(g)
		}
	}
	cfg := PaperConfig()
	cfg.PopSize, cfg.Generations = 16, 5
	res, err := Run(nil, p, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != int64(cfg.Generations) {
		t.Fatalf("BatchFitness fired %d times, want %d", n, cfg.Generations)
	}
	if res.Evaluations >= cfg.PopSize*cfg.Generations {
		t.Fatalf("%d evaluations — batching re-scored already-scored individuals", res.Evaluations)
	}
}

// TestBatchFitnessClampsBadValues: NaN and negative batch outputs are
// clamped to zero mass, exactly like the per-individual path.
func TestBatchFitnessClampsBadValues(t *testing.T) {
	p := Problem{
		Bounds: []Interval{{0, 1}},
		BatchFitness: func(genomes [][]float64, out []float64) {
			for i := range genomes {
				switch i % 3 {
				case 0:
					out[i] = math.NaN()
				case 1:
					out[i] = -2
				default:
					out[i] = 1
				}
			}
		},
	}
	cfg := PaperConfig()
	cfg.PopSize, cfg.Generations = 9, 2
	res, err := Run(nil, p, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.History {
		if math.IsNaN(st.Best) || math.IsNaN(st.Mean) || st.Worst < 0 {
			t.Fatalf("bad values leaked into stats: %+v", st)
		}
	}
}

// TestBatchFitnessCanceledContext: a cancellation observed around the
// batched call must surface as ErrCanceled without committing partial
// scores.
func TestBatchFitnessCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Problem{
		Bounds: []Interval{{0, 1}},
		BatchFitness: func(genomes [][]float64, out []float64) {
			cancel() // the evaluator observes cancellation mid-batch
			for i := range genomes {
				out[i] = 1
			}
		},
	}
	cfg := PaperConfig()
	cfg.PopSize, cfg.Generations = 8, 3
	res, err := Run(ctx, p, cfg, rand.New(rand.NewSource(9)))
	if err == nil || res != nil {
		t.Fatalf("canceled run returned (%v, %v)", res, err)
	}
	if !errors.Is(err, rerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestNilFitnessRejectedOnlyWithoutBatch: Fitness may be nil when
// BatchFitness is provided, but not when both are missing.
func TestNilFitnessRejectedOnlyWithoutBatch(t *testing.T) {
	cfg := PaperConfig()
	cfg.PopSize, cfg.Generations = 8, 1
	_, err := Run(nil, Problem{Bounds: []Interval{{0, 1}}}, cfg, rand.New(rand.NewSource(1)))
	if !errors.Is(err, rerr.ErrBadConfig) {
		t.Fatalf("nil fitness accepted: %v", err)
	}
	p := Problem{
		Bounds: []Interval{{0, 1}},
		BatchFitness: func(genomes [][]float64, out []float64) {
			for i := range out {
				out[i] = 1
			}
		},
	}
	if _, err := Run(nil, p, cfg, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("BatchFitness-only problem rejected: %v", err)
	}
}
