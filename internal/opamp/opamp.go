// Package opamp provides a functional opamp macromodel in the spirit of
// the FFM (functional fault model) of Calvano et al. (JETTA 2001), the
// paper's reference [7]: an opamp is characterized by a small set of
// functional parameters — DC open-loop gain, gain-bandwidth product,
// input resistance, output resistance — and an active-device fault is a
// percentage deviation of one of those parameters.
//
// The macromodel expands into primitive MNA elements (resistors, one
// capacitor, one VCVS), so the analysis package needs no special cases.
package opamp

import (
	"fmt"

	"repro/internal/circuit"
)

// Params are the functional parameters of the single-pole macromodel.
type Params struct {
	// A0 is the DC open-loop voltage gain (dimensionless, e.g. 2e5).
	A0 float64
	// GBW is the gain-bandwidth product in rad/s (e.g. 2π·1MHz).
	GBW float64
	// Rin is the differential input resistance in ohms.
	Rin float64
	// Rout is the output resistance in ohms.
	Rout float64
}

// Typical741 returns parameters close to the classic µA741:
// A0 = 2·10⁵, GBW = 2π·1 MHz, Rin = 2 MΩ, Rout = 75 Ω.
func Typical741() Params {
	return Params{A0: 2e5, GBW: 6.2832e6, Rin: 2e6, Rout: 75}
}

// Ideal returns parameters so extreme the macromodel behaves nearly
// ideally over the audio band; useful to cross-check macromodel circuits
// against their IdealOpAmp versions.
func Ideal() Params {
	return Params{A0: 1e9, GBW: 1e12, Rin: 1e12, Rout: 1e-3}
}

// Validate reports parameter sanity errors.
func (p Params) Validate() error {
	if p.A0 <= 0 {
		return fmt.Errorf("opamp: A0 must be positive, got %g", p.A0)
	}
	if p.GBW <= 0 {
		return fmt.Errorf("opamp: GBW must be positive, got %g", p.GBW)
	}
	if p.Rin <= 0 {
		return fmt.Errorf("opamp: Rin must be positive, got %g", p.Rin)
	}
	if p.Rout <= 0 {
		return fmt.Errorf("opamp: Rout must be positive, got %g", p.Rout)
	}
	return nil
}

// Pole returns the dominant-pole frequency ω_p = GBW / A0 in rad/s.
func (p Params) Pole() float64 { return p.GBW / p.A0 }

// FaultParam identifies one macromodel parameter for fault injection.
type FaultParam string

// Macromodel parameter names usable as fault targets.
const (
	ParamA0   FaultParam = "A0"
	ParamGBW  FaultParam = "GBW"
	ParamRin  FaultParam = "Rin"
	ParamRout FaultParam = "Rout"
)

// AllParams lists every macromodel fault target.
func AllParams() []FaultParam {
	return []FaultParam{ParamA0, ParamGBW, ParamRin, ParamRout}
}

// Scale returns a copy of p with the named parameter multiplied by k.
func (p Params) Scale(param FaultParam, k float64) (Params, error) {
	out := p
	switch param {
	case ParamA0:
		out.A0 *= k
	case ParamGBW:
		out.GBW *= k
	case ParamRin:
		out.Rin *= k
	case ParamRout:
		out.Rout *= k
	default:
		return Params{}, fmt.Errorf("opamp: unknown parameter %q", param)
	}
	return out, out.Validate()
}

// Expand adds the macromodel's primitive elements to circuit c for an
// opamp named name with the given input and output nodes. The expansion
// uses three internal nodes derived from the name.
//
// Topology:
//
//	inP —[Rin]— inN                      (differential input resistance)
//	VCVS A0·(V(inP)-V(inN)) → node g     (ideal gain stage)
//	g —[Rp]—(p)—[Cp to ground]           (dominant pole ω_p = GBW/A0)
//	p —[Rout]— out                       (output resistance)
//
// The pole RC uses Rp = 1 kΩ and Cp = 1/(Rp·ω_p).
func Expand(c *circuit.Circuit, name, inP, inN, out string, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	gNode := name + ".g"
	pNode := name + ".p"
	const rp = 1000.0
	cp := 1 / (rp * p.Pole())
	els := []circuit.Element{
		circuit.NewResistor(name+".Rin", inP, inN, p.Rin),
		circuit.NewVCVS(name+".E", gNode, "0", inP, inN, p.A0),
		circuit.NewResistor(name+".Rp", gNode, pNode, rp),
		circuit.NewCapacitor(name+".Cp", pNode, "0", cp),
		circuit.NewResistor(name+".Rout", pNode, out, p.Rout),
	}
	for _, e := range els {
		if err := c.Add(e); err != nil {
			return err
		}
	}
	return nil
}

// ElementNames returns the names of the primitive elements Expand creates
// for an opamp called name, useful for inspecting or faulting them
// directly.
func ElementNames(name string) []string {
	return []string{name + ".Rin", name + ".E", name + ".Rp", name + ".Cp", name + ".Rout"}
}

// InjectFault rebuilds the macromodel parameter deviation as direct
// element-value changes on an expanded macromodel inside circuit c.
// A0 scales the VCVS gain; GBW scales the pole capacitor inversely;
// Rin and Rout scale their resistors.
func InjectFault(c *circuit.Circuit, name string, param FaultParam, k float64) error {
	if k <= 0 {
		return fmt.Errorf("opamp: fault scale must be positive, got %g", k)
	}
	switch param {
	case ParamA0:
		// A0 appears in the gain stage and in the pole (ω_p = GBW/A0):
		// scaling A0 by k scales the pole capacitor by k as well.
		if err := c.ScaleValue(name+".E", k); err != nil {
			return err
		}
		return c.ScaleValue(name+".Cp", k)
	case ParamGBW:
		// ω_p ∝ GBW → Cp ∝ 1/GBW.
		return c.ScaleValue(name+".Cp", 1/k)
	case ParamRin:
		return c.ScaleValue(name+".Rin", k)
	case ParamRout:
		return c.ScaleValue(name+".Rout", k)
	default:
		return fmt.Errorf("opamp: unknown parameter %q", param)
	}
}
