package opamp

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
)

func TestParamsValidate(t *testing.T) {
	if err := Typical741().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{A0: 0, GBW: 1, Rin: 1, Rout: 1},
		{A0: 1, GBW: -1, Rin: 1, Rout: 1},
		{A0: 1, GBW: 1, Rin: 0, Rout: 1},
		{A0: 1, GBW: 1, Rin: 1, Rout: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestPole(t *testing.T) {
	p := Typical741()
	want := p.GBW / p.A0
	if got := p.Pole(); got != want {
		t.Fatalf("Pole = %g, want %g", got, want)
	}
}

func TestScale(t *testing.T) {
	p := Typical741()
	up, err := p.Scale(ParamA0, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if up.A0 != p.A0*1.4 || up.GBW != p.GBW {
		t.Fatalf("Scale(A0) = %+v", up)
	}
	if _, err := p.Scale("bogus", 1.1); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := p.Scale(ParamRin, -1); err == nil {
		t.Fatal("negative scale accepted")
	}
	if len(AllParams()) != 4 {
		t.Fatal("AllParams should list 4 parameters")
	}
}

// buildInverting returns an inverting amplifier (gain -rf/rin) using the
// macromodel.
func buildInverting(p Params, rin, rf float64) *circuit.Circuit {
	c := circuit.New("inv-macro")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("Ri", "in", "sum", rin))
	c.MustAdd(circuit.NewResistor("Rf", "sum", "out", rf))
	if err := Expand(c, "U1", "0", "sum", "out", p); err != nil {
		panic(err)
	}
	return c
}

func TestMacromodelInvertingAmp(t *testing.T) {
	c := buildInverting(Typical741(), 1000, 10000)
	ac, err := analysis.NewAC(c)
	if err != nil {
		t.Fatal(err)
	}
	// Low frequency: loop gain huge, gain ≈ -10.
	h, err := ac.Transfer("V1", "out", 100)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(h+10) > 0.01 {
		t.Fatalf("low-freq gain = %v, want about -10", h)
	}
	// At the closed-loop corner (GBW / noise gain = 6.28e6/11 ≈ 571k
	// rad/s) the gain magnitude drops to ~0.707 of 10.
	corner := Typical741().GBW / 11
	hc, err := ac.Transfer("V1", "out", corner)
	if err != nil {
		t.Fatal(err)
	}
	ratio := cmplx.Abs(hc) / 10
	if math.Abs(ratio-math.Sqrt(0.5)) > 0.05 {
		t.Fatalf("corner ratio = %g, want about 0.707", ratio)
	}
	// Far above GBW the gain collapses.
	hh, err := ac.Transfer("V1", "out", Typical741().GBW*100)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(hh) > 0.2 {
		t.Fatalf("super-GBW gain = %v, want tiny", cmplx.Abs(hh))
	}
}

func TestMacromodelMatchesIdealWhenIdeal(t *testing.T) {
	macro := buildInverting(Ideal(), 1000, 4000)
	acM, err := analysis.NewAC(macro)
	if err != nil {
		t.Fatal(err)
	}
	ideal := circuit.New("inv-ideal")
	ideal.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	ideal.MustAdd(circuit.NewResistor("Ri", "in", "sum", 1000))
	ideal.MustAdd(circuit.NewResistor("Rf", "sum", "out", 4000))
	ideal.MustAdd(circuit.NewIdealOpAmp("U1", "0", "sum", "out"))
	acI, err := analysis.NewAC(ideal)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{1, 100, 10000} {
		hm, err := acM.Transfer("V1", "out", w)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := acI.Transfer("V1", "out", w)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(hm-hi) > 1e-3 {
			t.Fatalf("ω=%g: macro %v vs ideal %v", w, hm, hi)
		}
	}
}

func TestExpandElementNamesAndDuplicate(t *testing.T) {
	c := circuit.New("t")
	if err := Expand(c, "U1", "a", "b", "c", Typical741()); err != nil {
		t.Fatal(err)
	}
	for _, n := range ElementNames("U1") {
		if _, ok := c.Element(n); !ok {
			t.Errorf("missing expanded element %q", n)
		}
	}
	// Second expansion under the same name must fail (duplicate names).
	if err := Expand(c, "U1", "a", "b", "c", Typical741()); err == nil {
		t.Fatal("duplicate expansion accepted")
	}
	// Invalid parameters rejected before any mutation.
	if err := Expand(c, "U2", "a", "b", "c", Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestInjectFault(t *testing.T) {
	base := buildInverting(Typical741(), 1000, 10000)

	// GBW down 40% shifts the closed-loop corner down by 40%.
	faulty := base.Clone()
	if err := InjectFault(faulty, "U1", ParamGBW, 0.6); err != nil {
		t.Fatal(err)
	}
	acB, _ := analysis.NewAC(base)
	acF, _ := analysis.NewAC(faulty)
	w := Typical741().GBW / 11 // nominal corner
	hb, _ := acB.Transfer("V1", "out", w)
	hf, _ := acF.Transfer("V1", "out", w)
	if !(cmplx.Abs(hf) < cmplx.Abs(hb)) {
		t.Fatalf("GBW fault did not reduce corner gain: %g vs %g", cmplx.Abs(hf), cmplx.Abs(hb))
	}

	// A0 fault changes DC loop precision only slightly in closed loop —
	// check it is applied to the VCVS element value.
	f2 := base.Clone()
	if err := InjectFault(f2, "U1", ParamA0, 0.5); err != nil {
		t.Fatal(err)
	}
	v, err := f2.Value("U1.E")
	if err != nil {
		t.Fatal(err)
	}
	if v != Typical741().A0*0.5 {
		t.Fatalf("A0 fault value = %g", v)
	}

	// Rout / Rin faults scale their resistors.
	f3 := base.Clone()
	if err := InjectFault(f3, "U1", ParamRout, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := f3.Value("U1.Rout"); v != Typical741().Rout*2 {
		t.Fatalf("Rout fault value = %g", v)
	}
	if err := InjectFault(base.Clone(), "U1", "bogus", 1.1); err == nil {
		t.Fatal("unknown param accepted")
	}
	if err := InjectFault(base.Clone(), "U1", ParamRin, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}
