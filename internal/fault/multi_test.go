package fault

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(); err == nil {
		t.Fatal("empty multi accepted")
	}
	if _, err := NewMulti(Fault{Component: "R1"}); err == nil {
		t.Fatal("golden part accepted")
	}
	if _, err := NewMulti(
		Fault{Component: "R1", Deviation: 0.1},
		Fault{Component: "R1", Deviation: 0.2},
	); err == nil {
		t.Fatal("duplicate component accepted")
	}
	// Nonpositive scale is a construction error, not an apply-time one —
	// matching single-fault validation in universe generation.
	if _, err := NewMulti(
		Fault{Component: "R1", Deviation: -1},
		Fault{Component: "C1", Deviation: 0.1},
	); err == nil {
		t.Fatal("nonpositive scale accepted at construction")
	}
	m, err := NewMulti(
		Fault{Component: "R3", Deviation: 0.3},
		Fault{Component: "C1", Deviation: -0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by component name; ID joins with +.
	if m.ID() != "C1@-20%+R3@+30%" {
		t.Fatalf("ID = %q", m.ID())
	}
}

func TestParseSetIDRoundTrip(t *testing.T) {
	for _, id := range []string{"golden", "R3@+25%", "C1@-20%+R3@+30%", "C1@-20%+R2@+10%+R3@+30%"} {
		s, err := ParseSetID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if s.ID() != id {
			t.Fatalf("round-trip %q -> %q", id, s.ID())
		}
	}
	if s, _ := ParseSetID("golden"); len(s.Parts()) != 0 {
		t.Fatal("golden has parts")
	}
	if s, _ := ParseSetID("R3@+25%"); len(s.Parts()) != 1 {
		t.Fatal("single fault parts != 1")
	}
	for _, bad := range []string{"", "R3", "R3@+25%+", "R3@+25%+R3@-10%"} {
		if _, err := ParseSetID(bad); err == nil {
			t.Fatalf("malformed id %q accepted", bad)
		}
	}
}

func TestUniversePairs(t *testing.T) {
	u, err := NewUniverse([]string{"R1", "R2", "C1"}, []float64{-0.2, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := u.Pairs(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 component pairs × 2×2 deviation combos.
	if len(pairs) != 12 {
		t.Fatalf("got %d pairs, want 12", len(pairs))
	}
	seen := make(map[string]bool)
	for _, m := range pairs {
		if len(m) != 2 {
			t.Fatalf("pair %v has %d parts", m, len(m))
		}
		if seen[m.ID()] {
			t.Fatalf("duplicate pair %s", m.ID())
		}
		seen[m.ID()] = true
	}
	// Canonical order: first pair sweeps (R1, R2) with R1 outermost.
	if pairs[0].ID() != "R1@-20%+R2@-20%" || pairs[1].ID() != "R1@-20%+R2@+20%" {
		t.Fatalf("unexpected order: %s, %s", pairs[0].ID(), pairs[1].ID())
	}
	capped, err := u.Pairs(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 5 {
		t.Fatalf("cap ignored: %d", len(capped))
	}
	for i := range capped {
		if capped[i].ID() != pairs[i].ID() {
			t.Fatal("cap is not a prefix of the systematic order")
		}
	}
	single, _ := NewUniverse([]string{"R1"}, []float64{0.1})
	if _, err := single.Pairs(nil, 0); err == nil {
		t.Fatal("pairs over one component accepted")
	}
}

func TestMultiApply(t *testing.T) {
	g := golden()
	m, err := NewMulti(
		Fault{Component: "R1", Deviation: 0.2},
		Fault{Component: "C1", Deviation: -0.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := c.Value("R1")
	cv, _ := c.Value("C1")
	if math.Abs(r-1200) > 1e-9 || math.Abs(cv-0.6e-6) > 1e-15 {
		t.Fatalf("applied values %g, %g", r, cv)
	}
	// Golden untouched.
	if v, _ := g.Value("R1"); v != 1000 {
		t.Fatal("golden mutated")
	}
	// Bad component inside.
	bad := Multi{{Component: "R9", Deviation: 0.1}}
	if _, err := bad.Apply(g); err == nil {
		t.Fatal("missing component accepted")
	}
	if _, err := (Multi{}).Apply(g); err == nil {
		t.Fatal("empty apply accepted")
	}
}

func TestRandomMulti(t *testing.T) {
	u, _ := PaperUniverse([]string{"R1", "R2", "R3", "C1"})
	rng := rand.New(rand.NewSource(3))
	m, err := RandomMulti(u, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[0].Component == m[1].Component {
		t.Fatalf("multi = %v", m)
	}
	for _, f := range m {
		if f.Deviation == 0 {
			t.Fatal("zero deviation drawn")
		}
	}
	if _, err := RandomMulti(u, 1, rng); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RandomMulti(u, 9, rng); err == nil {
		t.Fatal("n > components accepted")
	}
	if _, err := RandomMulti(u, 2, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestTolerancePerturb(t *testing.T) {
	g := golden()
	tol := Tolerance{Sigma: 0.02}
	rng := rand.New(rand.NewSource(5))
	c, err := tol.Perturb(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Both components moved, within ±3σ = ±6%.
	for _, name := range []string{"R1", "C1"} {
		before, _ := g.Value(name)
		after, _ := c.Value(name)
		rel := math.Abs(after-before) / before
		if rel == 0 {
			t.Errorf("%s unperturbed", name)
		}
		if rel > 0.061 {
			t.Errorf("%s moved %.1f%%, beyond 3σ", name, rel*100)
		}
	}
	// Exclusion.
	c2, err := tol.Perturb(g, rand.New(rand.NewSource(5)), "R1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c2.Value("R1"); v != 1000 {
		t.Fatal("excluded component perturbed")
	}
	// Validation.
	if _, err := (Tolerance{Sigma: -1}).Perturb(g, rng); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := (Tolerance{Sigma: 0.5}).Perturb(g, rng); err == nil {
		t.Fatal("huge sigma accepted")
	}
	if _, err := tol.Perturb(g, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestToleranceZeroSigmaIsIdentity(t *testing.T) {
	g := golden()
	c, err := (Tolerance{Sigma: 0}).Perturb(g, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"R1", "C1"} {
		before, _ := g.Value(name)
		after, _ := c.Value(name)
		if before != after {
			t.Fatalf("%s changed with sigma 0", name)
		}
	}
}
