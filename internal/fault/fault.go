// Package fault implements the paper's fault model: single functional
// parametric faults, where a fault is a percentage deviation of one
// component's value ("faults in R & C are represented as % deviations on
// their values"). It also provides the catastrophic open/short extension
// and the systematic fault-universe generation the fault-simulation (FS)
// step requires.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/rerr"
)

// Set is the fault-set abstraction every diagnosis layer speaks: one
// named fault hypothesis — the golden circuit, a single parametric
// Fault, or a simultaneous Multi. IDs are stable (ParseSetID inverts
// them) and Parts resolves the hypothesis to its per-component
// deviations, which the engine maps onto template slots.
type Set interface {
	// ID renders the stable identifier ("golden", "R3@+20%",
	// "C1@-20%+R3@+30%").
	ID() string
	// Parts lists the individual component deviations (empty for golden).
	Parts() []Fault
}

// Fault is a single parametric deviation of one component.
type Fault struct {
	// Component is the element name, e.g. "R3".
	Component string
	// Deviation is the fractional deviation: +0.2 means the component is
	// at 120% of nominal, -0.4 means 60%. Zero denotes the golden
	// circuit.
	Deviation float64
}

// ID renders the paper-style fault identifier, e.g. "R3@+20%".
func (f Fault) ID() string {
	if f.Deviation == 0 {
		return "golden"
	}
	return fmt.Sprintf("%s@%+.0f%%", f.Component, f.Deviation*100)
}

// Scale returns the multiplicative factor applied to the nominal value.
func (f Fault) Scale() float64 { return 1 + f.Deviation }

// IsGolden reports whether the fault denotes the nominal circuit.
func (f Fault) IsGolden() bool { return f.Deviation == 0 }

// Parts implements Set: a golden fault has no parts, a genuine fault is
// its own single part.
func (f Fault) Parts() []Fault {
	if f.IsGolden() {
		return nil
	}
	return []Fault{f}
}

// ParseID parses an identifier produced by ID (or "golden").
func ParseID(id string) (Fault, error) {
	if id == "golden" {
		return Fault{}, nil
	}
	at := strings.LastIndex(id, "@")
	if at <= 0 || !strings.HasSuffix(id, "%") {
		return Fault{}, fmt.Errorf("fault: malformed id %q (want NAME@±NN%%)", id)
	}
	var pct float64
	if _, err := fmt.Sscanf(id[at+1:], "%f%%", &pct); err != nil {
		return Fault{}, fmt.Errorf("fault: malformed deviation in %q: %v", id, err)
	}
	return Fault{Component: id[:at], Deviation: pct / 100}, nil
}

// Apply injects the fault into a clone of the golden circuit and returns
// the faulty circuit. The golden circuit is never modified.
func (f Fault) Apply(golden *circuit.Circuit) (*circuit.Circuit, error) {
	if f.IsGolden() {
		return golden.Clone(), nil
	}
	if f.Scale() <= 0 {
		return nil, fmt.Errorf("fault: %s: deviation %+.0f%% makes the value nonpositive", f.Component, f.Deviation*100)
	}
	c := golden.Clone()
	if err := c.ScaleValue(f.Component, f.Scale()); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", f.ID(), err)
	}
	return c, nil
}

// Universe is an ordered set of single faults over a circuit's
// components — the fault dictionary's index set.
type Universe struct {
	// Components lists the fault targets in order.
	Components []string
	// Deviations lists the fractional deviations applied to every
	// component (zero excluded), sorted ascending.
	Deviations []float64
}

// PaperDeviations returns the deviation grid of the paper's application
// example: 60%–140% of nominal in 10% steps, i.e. ±10%, ±20%, ±30%, ±40%,
// zero excluded.
func PaperDeviations() []float64 {
	return []float64{-0.4, -0.3, -0.2, -0.1, 0.1, 0.2, 0.3, 0.4}
}

// NewUniverse builds a fault universe over the given components and
// deviation grid. Deviations are deduplicated, sorted, and must not
// include 0 (the golden point is handled separately) or anything at or
// below -100%. Rejections wrap rerr.ErrBadConfig.
func NewUniverse(components []string, deviations []float64) (*Universe, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("fault: %w: universe needs at least one component", rerr.ErrBadConfig)
	}
	seenC := make(map[string]bool)
	for _, c := range components {
		if c == "" {
			return nil, fmt.Errorf("fault: %w: empty component name", rerr.ErrBadConfig)
		}
		if seenC[c] {
			return nil, fmt.Errorf("fault: %w: duplicate component %q", rerr.ErrBadConfig, c)
		}
		seenC[c] = true
	}
	if len(deviations) == 0 {
		return nil, fmt.Errorf("fault: %w: universe needs at least one deviation", rerr.ErrBadConfig)
	}
	seenD := make(map[float64]bool)
	var devs []float64
	for _, d := range deviations {
		if d == 0 {
			return nil, fmt.Errorf("fault: %w: deviation 0 is the golden circuit, not a fault", rerr.ErrBadConfig)
		}
		if d <= -1 {
			return nil, fmt.Errorf("fault: %w: deviation %g zeroes or negates the component", rerr.ErrBadConfig, d)
		}
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("fault: %w: non-finite deviation", rerr.ErrBadConfig)
		}
		if !seenD[d] {
			seenD[d] = true
			devs = append(devs, d)
		}
	}
	sort.Float64s(devs)
	return &Universe{Components: append([]string(nil), components...), Deviations: devs}, nil
}

// PaperUniverse builds the paper's universe over the given components:
// every component deviated in 10% steps across 60%–140%.
func PaperUniverse(components []string) (*Universe, error) {
	return NewUniverse(components, PaperDeviations())
}

// Faults enumerates every single fault, grouped by component in
// component order, each group sorted by deviation.
func (u *Universe) Faults() []Fault {
	out := make([]Fault, 0, len(u.Components)*len(u.Deviations))
	for _, c := range u.Components {
		for _, d := range u.Deviations {
			out = append(out, Fault{Component: c, Deviation: d})
		}
	}
	return out
}

// Size returns the number of single faults in the universe.
func (u *Universe) Size() int { return len(u.Components) * len(u.Deviations) }

// ComponentFaults returns the faults of one component sorted by
// deviation.
func (u *Universe) ComponentFaults(component string) ([]Fault, error) {
	for _, c := range u.Components {
		if c == component {
			out := make([]Fault, len(u.Deviations))
			for i, d := range u.Deviations {
				out[i] = Fault{Component: c, Deviation: d}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("fault: %w: component %q not in universe", rerr.ErrUnknownComponent, component)
}

// NegativeBranch returns the component's faults with negative deviation
// ordered from most deviated toward nominal; PositiveBranch the positive
// ones from nominal outward. Together with the golden origin they form
// the two arms of a fault trajectory.
func (u *Universe) NegativeBranch(component string) ([]Fault, error) {
	fs, err := u.ComponentFaults(component)
	if err != nil {
		return nil, err
	}
	var out []Fault
	for _, f := range fs {
		if f.Deviation < 0 {
			out = append(out, f)
		}
	}
	return out, nil
}

// PositiveBranch returns the component's positive-deviation faults in
// increasing order.
func (u *Universe) PositiveBranch(component string) ([]Fault, error) {
	fs, err := u.ComponentFaults(component)
	if err != nil {
		return nil, err
	}
	var out []Fault
	for _, f := range fs {
		if f.Deviation > 0 {
			out = append(out, f)
		}
	}
	return out, nil
}

// Validate checks that every fault in the universe is injectable into the
// circuit (components exist, are Valued, and deviations keep values
// positive).
func (u *Universe) Validate(golden *circuit.Circuit) error {
	for _, c := range u.Components {
		if _, err := golden.Value(c); err != nil {
			return fmt.Errorf("fault: universe: %w: %v", rerr.ErrUnknownComponent, err)
		}
	}
	for _, d := range u.Deviations {
		if 1+d <= 0 {
			return fmt.Errorf("fault: deviation %g is not injectable", d)
		}
	}
	return nil
}

// Catastrophic faults model hard failures as extreme parametric scalings,
// the standard simulation practice when a true topology change (open or
// short) would need circuit rewiring.
const (
	// OpenScale multiplies a resistance to approximate an open circuit
	// (or divides a capacitance).
	OpenScale = 1e9
	// ShortScale approximates a short.
	ShortScale = 1e-9
)

// Catastrophic describes a hard fault on one component.
type Catastrophic struct {
	Component string
	// Open true → open circuit; false → short circuit.
	Open bool
}

// ID returns e.g. "R3#open".
func (c Catastrophic) ID() string {
	if c.Open {
		return c.Component + "#open"
	}
	return c.Component + "#short"
}

// Apply injects the catastrophic fault into a clone of golden. For
// resistors an open multiplies R; for capacitors an open divides C
// (capacitive admittance sC → 0); vice versa for shorts.
func (c Catastrophic) Apply(golden *circuit.Circuit) (*circuit.Circuit, error) {
	cc := golden.Clone()
	e, ok := cc.Element(c.Component)
	if !ok {
		return nil, fmt.Errorf("fault: no element %q", c.Component)
	}
	scale := OpenScale
	if !c.Open {
		scale = ShortScale
	}
	switch e.(type) {
	case *circuit.Capacitor:
		// A huge capacitor is a short; a tiny one is an open.
		scale = 1 / scale
	case *circuit.Inductor:
		// A huge inductance is an open at AC; tiny is a short.
	default:
	}
	if err := cc.ScaleValue(c.Component, scale); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", c.ID(), err)
	}
	return cc, nil
}
