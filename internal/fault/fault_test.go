package fault

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestFaultID(t *testing.T) {
	cases := map[Fault]string{
		{Component: "R3", Deviation: 0.2}:  "R3@+20%",
		{Component: "C1", Deviation: -0.4}: "C1@-40%",
		{}:                                 "golden",
		{Component: "R1", Deviation: 0.05}: "R1@+5%",
	}
	for f, want := range cases {
		if got := f.ID(); got != want {
			t.Errorf("ID(%+v) = %q, want %q", f, got, want)
		}
	}
}

func TestParseIDRoundTrip(t *testing.T) {
	for _, f := range []Fault{
		{Component: "R3", Deviation: 0.2},
		{Component: "C1", Deviation: -0.4},
		{Component: "U1.Rout", Deviation: 0.1},
		{},
	} {
		got, err := ParseID(f.ID())
		if err != nil {
			t.Fatalf("ParseID(%q): %v", f.ID(), err)
		}
		if got.Component != f.Component || math.Abs(got.Deviation-f.Deviation) > 1e-9 {
			t.Fatalf("round trip %+v -> %+v", f, got)
		}
	}
	for _, bad := range []string{"", "R3", "R3@", "@+20%", "R3@x%", "R3@20"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestScaleAndGolden(t *testing.T) {
	f := Fault{Component: "R1", Deviation: -0.4}
	if f.Scale() != 0.6 {
		t.Fatalf("Scale = %v", f.Scale())
	}
	if f.IsGolden() {
		t.Fatal("deviated fault reported golden")
	}
	if !(Fault{}).IsGolden() {
		t.Fatal("zero fault not golden")
	}
}

func golden() *circuit.Circuit {
	c := circuit.New("g")
	c.MustAdd(circuit.NewVSource("V1", "in", "0", 1))
	c.MustAdd(circuit.NewResistor("R1", "in", "out", 1000))
	c.MustAdd(circuit.NewCapacitor("C1", "out", "0", 1e-6))
	return c
}

func TestApply(t *testing.T) {
	g := golden()
	f := Fault{Component: "R1", Deviation: 0.2}
	faulty, err := f.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := faulty.Value("R1")
	if math.Abs(v-1200) > 1e-9 {
		t.Fatalf("faulty R1 = %v, want 1200", v)
	}
	// Golden untouched.
	v, _ = g.Value("R1")
	if v != 1000 {
		t.Fatal("golden circuit mutated")
	}
	// Golden fault returns a clone.
	cl, err := (Fault{}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cl.Value("R1"); v != 1000 {
		t.Fatal("golden clone wrong")
	}
	// Errors.
	if _, err := (Fault{Component: "R9", Deviation: 0.1}).Apply(g); err == nil {
		t.Fatal("missing component accepted")
	}
	if _, err := (Fault{Component: "R1", Deviation: -1}).Apply(g); err == nil {
		t.Fatal("-100% deviation accepted")
	}
}

func TestPaperDeviations(t *testing.T) {
	d := PaperDeviations()
	if len(d) != 8 {
		t.Fatalf("len = %d, want 8", len(d))
	}
	for _, v := range d {
		if v == 0 || math.Abs(v) > 0.4+1e-12 {
			t.Fatalf("bad paper deviation %v", v)
		}
	}
}

func TestNewUniverseValidation(t *testing.T) {
	if _, err := NewUniverse(nil, PaperDeviations()); err == nil {
		t.Fatal("empty components accepted")
	}
	if _, err := NewUniverse([]string{"R1", "R1"}, PaperDeviations()); err == nil {
		t.Fatal("duplicate components accepted")
	}
	if _, err := NewUniverse([]string{""}, PaperDeviations()); err == nil {
		t.Fatal("empty component name accepted")
	}
	if _, err := NewUniverse([]string{"R1"}, nil); err == nil {
		t.Fatal("empty deviations accepted")
	}
	if _, err := NewUniverse([]string{"R1"}, []float64{0}); err == nil {
		t.Fatal("zero deviation accepted")
	}
	if _, err := NewUniverse([]string{"R1"}, []float64{-1}); err == nil {
		t.Fatal("-100% accepted")
	}
	if _, err := NewUniverse([]string{"R1"}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	// Dedup and sort.
	u, err := NewUniverse([]string{"R1"}, []float64{0.2, -0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Deviations) != 2 || u.Deviations[0] != -0.1 || u.Deviations[1] != 0.2 {
		t.Fatalf("deviations = %v", u.Deviations)
	}
}

func TestUniverseFaultsOrderAndSize(t *testing.T) {
	u, err := PaperUniverse([]string{"R1", "C1"})
	if err != nil {
		t.Fatal(err)
	}
	fs := u.Faults()
	if len(fs) != 16 || u.Size() != 16 {
		t.Fatalf("size = %d/%d, want 16", len(fs), u.Size())
	}
	if fs[0].Component != "R1" || fs[0].Deviation != -0.4 {
		t.Fatalf("first fault = %+v", fs[0])
	}
	if fs[8].Component != "C1" {
		t.Fatalf("ninth fault = %+v", fs[8])
	}
}

func TestBranches(t *testing.T) {
	u, _ := PaperUniverse([]string{"R1"})
	neg, err := u.NegativeBranch("R1")
	if err != nil {
		t.Fatal(err)
	}
	pos, err := u.PositiveBranch("R1")
	if err != nil {
		t.Fatal(err)
	}
	if len(neg) != 4 || len(pos) != 4 {
		t.Fatalf("branches = %d/%d, want 4/4", len(neg), len(pos))
	}
	for _, f := range neg {
		if f.Deviation >= 0 {
			t.Fatal("positive deviation in negative branch")
		}
	}
	if _, err := u.NegativeBranch("zz"); err == nil {
		t.Fatal("unknown component accepted")
	}
}

func TestUniverseValidateAgainstCircuit(t *testing.T) {
	g := golden()
	u, _ := PaperUniverse([]string{"R1", "C1"})
	if err := u.Validate(g); err != nil {
		t.Fatal(err)
	}
	u2, _ := PaperUniverse([]string{"R1", "V1"})
	if err := u2.Validate(g); err == nil {
		t.Fatal("non-Valued component accepted")
	}
	u3, _ := PaperUniverse([]string{"R9"})
	if err := u3.Validate(g); err == nil {
		t.Fatal("missing component accepted")
	}
}

func TestCatastrophic(t *testing.T) {
	g := golden()
	open := Catastrophic{Component: "R1", Open: true}
	if open.ID() != "R1#open" {
		t.Fatalf("ID = %q", open.ID())
	}
	c, err := open.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Value("R1"); v != 1000*OpenScale {
		t.Fatalf("open R1 = %g", v)
	}
	// Capacitor open divides.
	copen := Catastrophic{Component: "C1", Open: true}
	c2, err := copen.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c2.Value("C1"); math.Abs(v-1e-6/OpenScale) > 1e-24 {
		t.Fatalf("open C1 = %g", v)
	}
	cshort := Catastrophic{Component: "C1", Open: false}
	if cshort.ID() != "C1#short" {
		t.Fatalf("ID = %q", cshort.ID())
	}
	c3, err := cshort.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c3.Value("C1"); math.Abs(v-1e-6/ShortScale) > 1e-9 {
		t.Fatalf("short C1 = %g", v)
	}
	if _, err := (Catastrophic{Component: "zz"}).Apply(g); err == nil {
		t.Fatal("missing component accepted")
	}
}

// Property: every universe fault applies cleanly to a compatible circuit
// and scales the right component by exactly 1+deviation.
func TestQuickUniverseApply(t *testing.T) {
	g := golden()
	u, _ := PaperUniverse([]string{"R1", "C1"})
	faults := u.Faults()
	f := func(idx uint) bool {
		fa := faults[idx%uint(len(faults))]
		faulty, err := fa.Apply(g)
		if err != nil {
			return false
		}
		want, _ := g.Value(fa.Component)
		got, _ := faulty.Value(fa.Component)
		return math.Abs(got-want*fa.Scale()) < 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
