package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/circuit"
)

// Multi is a simultaneous multiple parametric fault — the case the
// paper's single-fault assumption excludes. The diagnosis stage cannot
// name such faults, but it can (and should) *reject* them instead of
// confidently misdiagnosing; see diagnosis.Result.Rejected.
type Multi []Fault

// NewMulti builds a multiple fault after validating that components are
// distinct and every part is a genuine deviation.
func NewMulti(parts ...Fault) (Multi, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("fault: empty multiple fault")
	}
	seen := make(map[string]bool)
	for _, p := range parts {
		if p.IsGolden() {
			return nil, fmt.Errorf("fault: multiple fault includes a zero deviation on %q", p.Component)
		}
		if seen[p.Component] {
			return nil, fmt.Errorf("fault: component %q faulted twice", p.Component)
		}
		seen[p.Component] = true
	}
	m := make(Multi, len(parts))
	copy(m, parts)
	sort.Slice(m, func(i, j int) bool { return m[i].Component < m[j].Component })
	return m, nil
}

// ID renders e.g. "C1@-20%+R3@+30%".
func (m Multi) ID() string {
	ids := make([]string, len(m))
	for i, f := range m {
		ids[i] = f.ID()
	}
	return strings.Join(ids, "+")
}

// Apply injects every part into one clone of the golden circuit.
func (m Multi) Apply(golden *circuit.Circuit) (*circuit.Circuit, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("fault: empty multiple fault")
	}
	c := golden.Clone()
	for _, f := range m {
		if f.Scale() <= 0 {
			return nil, fmt.Errorf("fault: %s: nonpositive scale", f.ID())
		}
		if err := c.ScaleValue(f.Component, f.Scale()); err != nil {
			return nil, fmt.Errorf("fault: %s: %w", m.ID(), err)
		}
	}
	return c, nil
}

// RandomMulti draws a random n-component multiple fault over the
// universe's components, each part's deviation drawn uniformly from the
// universe's deviation set.
func RandomMulti(u *Universe, n int, rng *rand.Rand) (Multi, error) {
	if n < 2 || n > len(u.Components) {
		return nil, fmt.Errorf("fault: multiple fault of %d parts over %d components", n, len(u.Components))
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil rng")
	}
	perm := rng.Perm(len(u.Components))
	parts := make([]Fault, n)
	for i := 0; i < n; i++ {
		parts[i] = Fault{
			Component: u.Components[perm[i]],
			Deviation: u.Deviations[rng.Intn(len(u.Deviations))],
		}
	}
	return NewMulti(parts...)
}

// Tolerance models manufacturing spread: every Valued component of the
// circuit is independently perturbed by a Gaussian factor
// (1 + N(0, sigma)), truncated at ±3σ so values stay positive for any
// reasonable sigma. This is the background against which a diagnosis
// must still work (experiment E11).
type Tolerance struct {
	// Sigma is the relative standard deviation, e.g. 0.01 for 1%.
	Sigma float64
}

// Perturb returns a clone of the circuit with every Valued component
// (optionally excluding the given names) perturbed.
func (t Tolerance) Perturb(golden *circuit.Circuit, rng *rand.Rand, exclude ...string) (*circuit.Circuit, error) {
	if t.Sigma < 0 || t.Sigma > 0.3 {
		return nil, fmt.Errorf("fault: tolerance sigma %g outside [0, 0.3]", t.Sigma)
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil rng")
	}
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	c := golden.Clone()
	for _, name := range c.ValuedNames() {
		if skip[name] {
			continue
		}
		g := rng.NormFloat64()
		if g > 3 {
			g = 3
		}
		if g < -3 {
			g = -3
		}
		if err := c.ScaleValue(name, 1+t.Sigma*g); err != nil {
			return nil, fmt.Errorf("fault: tolerance on %s: %w", name, err)
		}
	}
	return c, nil
}
