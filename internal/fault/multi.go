package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/circuit"
)

// Multi is a simultaneous multiple parametric fault — the case the
// paper's single-fault assumption excludes. When the modeled universe
// includes multi-fault trajectories (see Universe.Pairs and the
// trajectory package), the diagnosis stage names these like any other
// fault; points outside the modeled universe are still rejected via
// diagnosis.Result.Rejected.
type Multi []Fault

// NewMulti builds a multiple fault after validating that components are
// distinct and every part is a genuine, injectable deviation — the same
// construction-time validation single faults get from universe
// generation, so an invalid multi fails here rather than at apply or
// solve time.
func NewMulti(parts ...Fault) (Multi, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("fault: empty multiple fault")
	}
	seen := make(map[string]bool)
	for _, p := range parts {
		if p.IsGolden() {
			return nil, fmt.Errorf("fault: multiple fault includes a zero deviation on %q", p.Component)
		}
		if p.Scale() <= 0 {
			return nil, fmt.Errorf("fault: %s: deviation %+.0f%% makes the value nonpositive", p.Component, p.Deviation*100)
		}
		if seen[p.Component] {
			return nil, fmt.Errorf("fault: component %q faulted twice", p.Component)
		}
		seen[p.Component] = true
	}
	m := make(Multi, len(parts))
	copy(m, parts)
	sort.Slice(m, func(i, j int) bool { return m[i].Component < m[j].Component })
	return m, nil
}

// ID renders e.g. "C1@-20%+R3@+30%".
func (m Multi) ID() string {
	ids := make([]string, len(m))
	for i, f := range m {
		ids[i] = f.ID()
	}
	return strings.Join(ids, "+")
}

// Parts implements Set.
func (m Multi) Parts() []Fault { return m }

// Apply injects every part into one clone of the golden circuit.
// Nonpositive scales cannot occur on a NewMulti-built value (rejected at
// construction); the check remains for hand-assembled literals.
func (m Multi) Apply(golden *circuit.Circuit) (*circuit.Circuit, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("fault: empty multiple fault")
	}
	c := golden.Clone()
	for _, f := range m {
		if f.Scale() <= 0 {
			return nil, fmt.Errorf("fault: %s: nonpositive scale", f.ID())
		}
		if err := c.ScaleValue(f.Component, f.Scale()); err != nil {
			return nil, fmt.Errorf("fault: %s: %w", m.ID(), err)
		}
	}
	return c, nil
}

// ParseSetID parses an identifier produced by Fault.ID or Multi.ID
// (or "golden") back into the corresponding fault set — the inverse the
// dictionary export and the serving wire format round-trip through.
// Multi-part IDs are split at every "+" that follows a "%" terminator,
// so deviation signs ("R3@+20%") never act as separators.
func ParseSetID(id string) (Set, error) {
	if id == "golden" {
		return Fault{}, nil
	}
	var parts []Fault
	start := 0
	for i := 1; i < len(id); i++ {
		if id[i] == '+' && id[i-1] == '%' {
			f, err := ParseID(id[start:i])
			if err != nil {
				return nil, err
			}
			parts = append(parts, f)
			start = i + 1
		}
	}
	f, err := ParseID(id[start:])
	if err != nil {
		return nil, err
	}
	parts = append(parts, f)
	if len(parts) == 1 {
		return parts[0], nil
	}
	return NewMulti(parts...)
}

// Pairs enumerates the systematic double-fault universe: every unordered
// component pair in universe order, each part swept over the given
// deviation grid (nil → the universe's own grid). The sweep order is
// canonical — pair (A, B) with A before B in component order, A's
// deviation outermost, B's innermost — which is what groups the result
// into the per-(A, B, devA) polylines the trajectory layer builds.
// max > 0 caps the number of generated multis (a prefix of the
// systematic order), bounding dictionary and trajectory cost on large
// universes; max <= 0 means no cap.
func (u *Universe) Pairs(deviations []float64, max int) ([]Multi, error) {
	if len(u.Components) < 2 {
		return nil, fmt.Errorf("fault: double-fault universe needs at least 2 components, have %d", len(u.Components))
	}
	devs := deviations
	if devs == nil {
		devs = u.Deviations
	}
	if len(devs) == 0 {
		return nil, fmt.Errorf("fault: double-fault universe needs at least one deviation")
	}
	total := len(u.Components) * (len(u.Components) - 1) / 2 * len(devs) * len(devs)
	if max > 0 && max < total {
		total = max
	}
	out := make([]Multi, 0, total)
	for i := 0; i < len(u.Components); i++ {
		for j := i + 1; j < len(u.Components); j++ {
			for _, da := range devs {
				for _, db := range devs {
					m, err := NewMulti(
						Fault{Component: u.Components[i], Deviation: da},
						Fault{Component: u.Components[j], Deviation: db},
					)
					if err != nil {
						return nil, err
					}
					if max > 0 && len(out) >= max {
						return out, nil
					}
					out = append(out, m)
				}
			}
		}
	}
	return out, nil
}

// RandomMulti draws a random n-component multiple fault over the
// universe's components, each part's deviation drawn uniformly from the
// universe's deviation set.
func RandomMulti(u *Universe, n int, rng *rand.Rand) (Multi, error) {
	if n < 2 || n > len(u.Components) {
		return nil, fmt.Errorf("fault: multiple fault of %d parts over %d components", n, len(u.Components))
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil rng")
	}
	perm := rng.Perm(len(u.Components))
	parts := make([]Fault, n)
	for i := 0; i < n; i++ {
		parts[i] = Fault{
			Component: u.Components[perm[i]],
			Deviation: u.Deviations[rng.Intn(len(u.Deviations))],
		}
	}
	return NewMulti(parts...)
}

// Tolerance models manufacturing spread: every Valued component of the
// circuit is independently perturbed by a Gaussian factor
// (1 + N(0, sigma)), truncated at ±3σ so values stay positive for any
// reasonable sigma. This is the background against which a diagnosis
// must still work (experiment E11).
type Tolerance struct {
	// Sigma is the relative standard deviation, e.g. 0.01 for 1%.
	Sigma float64
}

// Perturb returns a clone of the circuit with every Valued component
// (optionally excluding the given names) perturbed.
func (t Tolerance) Perturb(golden *circuit.Circuit, rng *rand.Rand, exclude ...string) (*circuit.Circuit, error) {
	if t.Sigma < 0 || t.Sigma > 0.3 {
		return nil, fmt.Errorf("fault: tolerance sigma %g outside [0, 0.3]", t.Sigma)
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: nil rng")
	}
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	c := golden.Clone()
	for _, name := range c.ValuedNames() {
		if skip[name] {
			continue
		}
		g := rng.NormFloat64()
		if g > 3 {
			g = 3
		}
		if g < -3 {
			g = -3
		}
		if err := c.ScaleValue(name, 1+t.Sigma*g); err != nil {
			return nil, fmt.Errorf("fault: tolerance on %s: %w", name, err)
		}
	}
	return c, nil
}
