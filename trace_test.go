package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestSessionTracerSpans verifies WithTracer records one span per stage
// call plus the engine's per-column spans on the fault-set diagnosis
// path, and that the trace dumps as parseable JSON.
func TestSessionTracerSpans(t *testing.T) {
	ctx := context.Background()
	tr := NewTracer()
	s, err := NewSession(PaperCUT(), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	tv, err := s.Optimize(ctx, smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Trajectories(ctx, tv.Omegas); err != nil {
		t.Fatal(err)
	}
	dg, err := s.Diagnoser(ctx, tv.Omegas)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DiagnoseFaultSets(ctx, dg, []FaultSet{Fault{Component: "R3", Deviation: 0.25}}); err != nil {
		t.Fatal(err)
	}

	byName := map[string]int{}
	for _, sp := range tr.Spans() {
		byName[sp.Name]++
		if sp.DurMS < 0 || sp.StartMS < 0 {
			t.Errorf("span %s has negative timing: start %g dur %g", sp.Name, sp.StartMS, sp.DurMS)
		}
	}
	for _, want := range []string{"session.dictionary", "session.optimize", "session.trajectories"} {
		if byName[want] != 1 {
			t.Errorf("span %q recorded %d times, want 1 (spans: %v)", want, byName[want], byName)
		}
	}
	// DiagnoseFaultSets batches through the engine's fault-set path: one
	// engine.column span per test-vector frequency.
	if byName["engine.column"] < len(tv.Omegas) {
		t.Errorf("engine.column spans = %d, want >= %d", byName["engine.column"], len(tv.Omegas))
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Spans []TraceSpan `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(dump.Spans) != len(tr.Spans()) {
		t.Fatalf("JSON spans = %d, want %d", len(dump.Spans), len(tr.Spans()))
	}
}

// TestTracerDoesNotChangeResults pins the acceptance criterion: a traced
// session computes bit-identical GA results to an untraced one at the
// same seed.
func TestTracerDoesNotChangeResults(t *testing.T) {
	ctx := context.Background()
	plain := testSession(t)
	traced, err := NewSession(PaperCUT(), WithTracer(NewTracer()))
	if err != nil {
		t.Fatal(err)
	}
	tvP, err := plain.Optimize(ctx, smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	tvT, err := traced.Optimize(ctx, smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(tvP.Omegas) != len(tvT.Omegas) || tvP.Fitness != tvT.Fitness {
		t.Fatalf("traced run diverged: %+v vs %+v", tvP, tvT)
	}
	for i := range tvP.Omegas {
		if tvP.Omegas[i] != tvT.Omegas[i] {
			t.Fatalf("omega[%d]: %v vs %v", i, tvP.Omegas[i], tvT.Omegas[i])
		}
	}
}

// TestProgressElapsedMS verifies the timing field on the progress
// stream: stage-final events carry a non-negative elapsed time, and GA
// generation events carry non-decreasing elapsed times.
func TestProgressElapsedMS(t *testing.T) {
	var events []Progress
	s, err := NewSession(PaperCUT(), WithProgress(func(p Progress) { events = append(events, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("dictionary stage emitted %d events, want >= 2", len(events))
	}
	final := events[len(events)-1]
	if final.Completed != final.Total {
		t.Fatalf("last dictionary event %d/%d, want final", final.Completed, final.Total)
	}
	if final.ElapsedMS < 0 {
		t.Fatalf("final ElapsedMS = %g, want >= 0", final.ElapsedMS)
	}

	events = events[:0]
	if _, err := s.Optimize(context.Background(), smallCfg(2)); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, ev := range events {
		if ev.Stage != StageOptimize {
			continue
		}
		if ev.ElapsedMS < prev {
			t.Fatalf("generation %d ElapsedMS %g < previous %g", ev.Generation, ev.ElapsedMS, prev)
		}
		prev = ev.ElapsedMS
	}
	if prev < 0 {
		t.Fatal("no optimize events seen")
	}
}
