package repro

// Cross-module integration tests: each exercises a path through several
// packages that no single package test covers end to end.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/geometry"
	"repro/internal/numeric"
	"repro/internal/signal"
	"repro/internal/transient"
)

// TestIntegrationNetlistToDiagnosis drives the entire flow from netlist
// text to a correct diagnosis: parser → circuit → dictionary → GA →
// trajectories → classifier.
func TestIntegrationNetlistToDiagnosis(t *testing.T) {
	const nl = `sallen-key via netlist
V1 in 0 1
R1 in x 1
R2 x p 1
C1 x out 1.4142
C2 p 0 0.70711
U1 p out out
.end
`
	p, err := NewPipelineFromNetlist(nl, "V1", "out", []string{"C1", "C2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperOptimizeConfig(1)
	cfg.GA.PopSize = 24
	cfg.GA.Generations = 6
	tv, err := p.Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := p.Diagnoser(tv.Omegas)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dg.DiagnoseFault(p.Dictionary(), Fault{Component: "C1", Deviation: -0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Component != "C1" {
		t.Fatalf("diagnosed %s, want C1\n%s", res.Best().Component, res)
	}
}

// TestIntegrationTransientAgreesWithAC cross-validates the two
// independent solvers: the trapezoidal time-domain engine must converge
// to the phasor steady state of the AC engine on the paper CUT.
func TestIntegrationTransientAgreesWithAC(t *testing.T) {
	cut := PaperCUT()
	omega := 1.3

	ac, err := analysis.NewAC(cut.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ac.Transfer(cut.Source, cut.Output, omega)
	if err != nil {
		t.Fatal(err)
	}
	wantAmp := math.Hypot(real(h), imag(h))

	res, err := transient.Run(cut.Circuit.Clone(), transient.Config{
		Step:     2e-3,
		Duration: 80,
		Sources: map[string]transient.Waveform{
			cut.Source: transient.Sine(1, omega, math.Pi/2), // cos(ωt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Voltage(cut.Output)
	if err != nil {
		t.Fatal(err)
	}
	// Goertzel over the settled tail measures the steady-state
	// amplitude.
	fs := 1 / 2e-3
	tail := v[len(v)/2:]
	amp, _, err := signal.Goertzel(tail, fs, omega)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(amp-wantAmp) > 0.02*wantAmp {
		t.Fatalf("transient amplitude %g vs AC %g", amp, wantAmp)
	}
}

// TestIntegrationDiagnoseCircuitAPI exercises the public variant
// diagnosis: tolerance-perturbed board with a hard fault, plus a double
// fault that must be rejected.
func TestIntegrationDiagnoseCircuitAPI(t *testing.T) {
	p, err := NewPipeline(PaperCUT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	omegas := []float64{0.5, 2}
	rng := rand.New(rand.NewSource(21))

	// Tolerance background + single fault: diagnosed, not rejected.
	board, err := (Tolerance{Sigma: 0.005}).Perturb(p.Dictionary().Golden(), rng, "C2")
	if err != nil {
		t.Fatal(err)
	}
	if err := board.ScaleValue("C2", 1.3); err != nil {
		t.Fatal(err)
	}
	res, rejected, err := p.DiagnoseCircuit(board, omegas, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Fatalf("single fault rejected:\n%s", res)
	}
	if res.Best().Component != "C2" {
		t.Fatalf("diagnosed %s, want C2", res.Best().Component)
	}

	// Large double fault: rejection should fire.
	m, err := fault.NewMulti(
		Fault{Component: "R1", Deviation: 0.4},
		Fault{Component: "C3", Deviation: -0.4},
	)
	if err != nil {
		t.Fatal(err)
	}
	double, err := m.Apply(p.Dictionary().Golden())
	if err != nil {
		t.Fatal(err)
	}
	_, rejected, err = p.DiagnoseCircuit(double, omegas, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Not all doubles are rejectable; this specific large pair is far
	// off-manifold for this test vector — assert it is caught.
	if !rejected {
		t.Log("double fault not rejected at ratio 0.02 — checking at 0.01")
		_, rejected, err = p.DiagnoseCircuit(double, omegas, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if !rejected {
			t.Fatal("large double fault never rejected")
		}
	}
	// Rejection disabled → never rejected.
	_, rejected, err = p.DiagnoseCircuit(double, omegas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Fatal("rejection fired with ratio 0")
	}
}

// TestIntegrationFitTransferMatchesSweep validates the public fitting
// API against a fresh AC sweep of the CUT.
func TestIntegrationFitTransferMatchesSweep(t *testing.T) {
	p, err := NewPipeline(PaperCUT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.FitTransfer(0, 3, numeric.Logspace(0.02, 50, 21))
	if err != nil {
		t.Fatal(err)
	}
	ac, err := analysis.NewAC(p.Dictionary().Golden())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.1, 0.9, 3, 20} {
		h, err := ac.Transfer("Vin", "out", w)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Hypot(real(h), imag(h))
		if got := r.Mag(w); math.Abs(got-want) > 1e-3*want+1e-9 {
			t.Fatalf("ω=%g: fitted %g vs solved %g", w, got, want)
		}
	}
	// Degenerate degrees rejected through the public API too.
	if _, err := p.FitTransfer(0, 0, numeric.Logspace(0.1, 10, 9)); err == nil {
		t.Fatal("denDeg 0 accepted")
	}
}

// TestIntegrationCoherentMeasurementDiagnosis runs the phasor-free
// measurement path at moderate noise and verifies the diagnosis survives
// (the examples' flow, asserted).
func TestIntegrationCoherentMeasurementDiagnosis(t *testing.T) {
	p, err := NewPipeline(PaperCUT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	meas := signal.DefaultMeasureConfig()
	omegas, err := signal.CoherentOmegas([]float64{0.6, 4.5}, meas.SampleRate, meas.Samples)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := p.Diagnoser(omegas)
	if err != nil {
		t.Fatal(err)
	}

	gains := func(f Fault) []complex128 {
		t.Helper()
		circ, err := f.Apply(p.Dictionary().Golden())
		if err != nil {
			t.Fatal(err)
		}
		ac, err := analysis.NewAC(circ)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]complex128, len(omegas))
		for i, w := range omegas {
			h, err := ac.Transfer("Vin", "out", w)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = h
		}
		return out
	}

	goldenAmps, err := signal.MeasureTones(gains(Fault{}), omegas, meas, nil)
	if err != nil {
		t.Fatal(err)
	}
	noisy := meas
	noisy.SNRdB = 45
	noisy.ADCBits = 12
	rng := rand.New(rand.NewSource(4))
	correct := 0
	trials := []Fault{
		{Component: "R2", Deviation: 0.3},
		{Component: "C1", Deviation: -0.25},
		{Component: "R4", Deviation: 0.35},
		{Component: "C3", Deviation: -0.3},
	}
	for _, f := range trials {
		amps, err := signal.MeasureTones(gains(f), omegas, noisy, rng)
		if err != nil {
			t.Fatal(err)
		}
		point := make(geometry.VecN, len(amps))
		for i := range amps {
			point[i] = amps[i] - goldenAmps[i]
		}
		res, err := dg.Diagnose(point)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best().Component == f.Component {
			correct++
		}
	}
	if correct < 3 {
		t.Fatalf("only %d/4 noisy measurements diagnosed", correct)
	}
}
