package repro

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/analysis"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/fault"
	"repro/internal/ga"
	"repro/internal/geometry"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/probdiag"
	"repro/internal/trajectory"
)

// Stage identifies a Session phase in progress events.
type Stage string

const (
	// StageDictionary is fault simulation: compiling the CUT and filling
	// response grids.
	StageDictionary Stage = "dictionary"
	// StageOptimize is GA test-vector optimization.
	StageOptimize Stage = "optimize"
	// StageTrajectories is trajectory-map construction.
	StageTrajectories Stage = "trajectories"
	// StageEvaluate is the hold-out diagnosis evaluation.
	StageEvaluate Stage = "evaluate"
	// StageClouds is Monte-Carlo signature-cloud construction
	// (tolerance-aware probabilistic diagnosis model).
	StageClouds Stage = "clouds"
)

// Progress is one event on a session's progress stream.
//
// A stage that fails (including cancellation) stops emitting where it
// was interrupted — there is no synthetic completion or failure event;
// the stage's returned error is the failure signal. Consumers driving a
// UI should clear in-flight stages when the session call returns.
type Progress struct {
	// Stage names the phase the event belongs to.
	Stage Stage `json:"stage"`
	// Completed and Total measure the stage: GA generations for
	// StageOptimize, grid frequencies for StageDictionary, 0/1 and 1/1
	// begin/end markers for short stages.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// Generation is the finished 0-based GA generation (StageOptimize).
	Generation int `json:"generation"`
	// BestFitness is the generation's best GA fitness (StageOptimize).
	BestFitness float64 `json:"best_fitness"`
	// ElapsedMS is the wall-clock time since the stage began, in
	// milliseconds — a structured timing signal on every event after a
	// stage's opening 0/N marker (which carries 0). On a stage's final
	// event it is the stage duration.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// GenStats re-exports the GA's per-generation statistics.
type GenStats = ga.GenStats

// Option configures a Session (functional options, v2 API).
type Option func(*sessionOptions)

type sessionOptions struct {
	deviations   []float64
	components   []string
	workers      int
	progress     []func(Progress)
	doubleFaults bool
	maxDoubles   int
	tolerance    Tolerance
	tolSamples   int
	tolSeed      int64
	noiseTempK   float64
	noiseENBW    float64
	tracer       *obs.Tracer
}

// WithDeviations overrides the paper's ±10%…±40% fault grid with an
// explicit list of fractional deviations (e.g. -0.2, 0.2).
func WithDeviations(deviations ...float64) Option {
	return func(o *sessionOptions) {
		// Non-nil even when empty — see WithComponents.
		o.deviations = append([]float64{}, deviations...)
	}
}

// WithComponents restricts the fault universe to the named components
// (default: the CUT's fault targets, or every valued element for a
// netlist-built session).
func WithComponents(components ...string) Option {
	return func(o *sessionOptions) {
		// Non-nil even when empty: an explicit empty list is a config
		// error (caught by universe construction), not "use the default".
		o.components = append([]string{}, components...)
	}
}

// WithWorkers bounds the worker pools of the expensive stages (grid
// builds, GA fitness evaluation). 0 — the default — means one worker per
// CPU; negative values are rejected by NewSession.
func WithWorkers(n int) Option {
	return func(o *sessionOptions) { o.workers = n }
}

// WithDoubleFaults extends the modeled fault universe to simultaneous
// double faults: every unordered component pair of the universe, each
// part swept over the universe's deviation grid, capped at maxSets
// generated pairs (≤ 0 → no cap; the systematic generation order is
// documented on Universe.Pairs). Trajectory maps built by the session
// then carry one sweep-line family per (pair, frozen deviation), and
// Diagnoser/DiagnoseFaultSets name double faults instead of rejecting
// them — Rejected comes to mean "not in the modeled universe".
//
// The GA's fitness (trajectory intersections) intentionally stays on
// the single-fault map, per the paper; double-fault families only join
// at diagnosis time. Note the modeled pair count grows quadratically in
// components times quadratically in deviations — the paper CUT's 7
// components × 8 deviations already yield 1344 pairs — so serving-grade
// sessions on larger universes should set a cap. Artifacts saved from a
// double-fault session carry a different checksum than single-fault
// ones: the two model different universes and must not warm-start each
// other.
func WithDoubleFaults(maxSets int) Option {
	return func(o *sessionOptions) {
		o.doubleFaults = true
		o.maxDoubles = maxSets
	}
}

// WithTolerance attaches a manufacturing-tolerance model to the
// session: every component carries a relative standard deviation of
// tol.Sigma, and Clouds builds the probabilistic diagnosis model from
// the given number of Monte-Carlo samples per fault hypothesis. The
// tolerance configuration deliberately does not enter the artifact
// checksum — the point-signature path (Diagnoser, DiagnoseFaultSets,
// Evaluate, saved dictionaries/trajectories) is bit-identical with or
// without it, and existing artifacts keep warm-starting the session.
// Sigma outside [0, 0.3] or samples < 1 are rejected by NewSession.
func WithTolerance(tol Tolerance, samples int) Option {
	return func(o *sessionOptions) {
		o.tolerance = tol
		o.tolSamples = samples
	}
}

// WithToleranceSeed pins the Monte-Carlo base seed of cloud builds
// (sample i draws from seed+i). The default seed is 1; cloud builds
// are deterministic for a fixed seed at every worker count.
func WithToleranceSeed(seed int64) Option {
	return func(o *sessionOptions) { o.tolSeed = seed }
}

// WithMeasurementNoise adds an explicit measurement-noise term to
// probabilistic diagnosis: the output-referred thermal noise PSD at
// temperature tempK (kelvin), integrated over an equivalent noise
// bandwidth of enbwHz and normalized by the source amplitude, becomes
// a per-frequency additive variance in every likelihood and
// cloud-overlap computation. The PSDs are evaluated on the engine's
// stamp template — the same values analysis.OutputNoise computes by
// cloning and re-solving, pinned to 1e-9 by the engine's noise tests.
func WithMeasurementNoise(tempK, enbwHz float64) Option {
	return func(o *sessionOptions) {
		o.noiseTempK = tempK
		o.noiseENBW = enbwHz
	}
}

// WithProgress subscribes a callback to the session's progress stream.
// Events are delivered synchronously from whichever goroutine completes
// a unit of work: within a sequential stage (GA generations) calls
// arrive in order on one goroutine; during parallel grid builds
// (Precompute, SaveDictionary) the callback may be invoked concurrently
// and must be safe for that. Callbacks may call back into the Session.
// Multiple subscriptions all receive every event; for a decoupled
// consumer use WithProgressChannel.
func WithProgress(fn func(Progress)) Option {
	return func(o *sessionOptions) {
		if fn != nil {
			o.progress = append(o.progress, fn)
		}
	}
}

// WithTracer installs a span tracer on the session: every stage call
// (dictionary build, Optimize, Trajectories, Evaluate, Clouds) records
// one "session.<stage>" span, and the underlying engine records one
// "engine.column" span per frequency of every fault-set batch. The GA
// fitness hot path records no spans (see engine.SetTracer), so a traced
// session computes bit-identical results at unchanged steady-state
// allocation cost. A nil tracer is the default: all span sites are
// no-ops. Dump the collected spans with Tracer.WriteJSON.
func WithTracer(t *Tracer) Option {
	return func(o *sessionOptions) { o.tracer = t }
}

// WithProgressChannel subscribes a channel to the progress stream.
// Sends never block: when the channel is full the event is dropped, so a
// slow consumer cannot stall a stage. Use a buffered channel sized for
// the expected event rate (one per GA generation / grid frequency).
func WithProgressChannel(ch chan<- Progress) Option {
	return func(o *sessionOptions) {
		if ch == nil {
			return
		}
		o.progress = append(o.progress, func(ev Progress) {
			select {
			case ch <- ev:
			default:
			}
		})
	}
}

// Session is the v2 entry point: it owns the fault dictionary for one
// circuit under test and exposes every long-running stage with
// context.Context threading, progress streaming, and structured errors.
//
// A Session is safe for concurrent use: the underlying dictionary
// memoization is locked, stages do not share mutable state, and the
// subscriber list is immutable after construction.
type Session struct {
	cut      CUT
	atpg     *core.ATPG
	workers  int
	checksum string
	pairs    []fault.Multi    // modeled double-fault universe; nil without WithDoubleFaults
	progress []func(Progress) // immutable after NewSession
	tracer   *obs.Tracer      // nil without WithTracer; all span sites are nil-safe

	// Tolerance model (WithTolerance); tolSamples == 0 means none.
	tolerance  Tolerance
	tolSamples int
	tolSeed    int64
	noiseTempK float64
	noiseENBW  float64
}

// NewSession builds the fault dictionary for a CUT and returns the
// session every other stage hangs off. Options replace Pipeline's
// positional nil-able arguments:
//
//	s, err := repro.NewSession(cut,
//	    repro.WithDeviations(-0.2, -0.1, 0.1, 0.2),
//	    repro.WithWorkers(4),
//	    repro.WithProgress(func(p repro.Progress) { log.Println(p) }),
//	)
//
// Configuration failures wrap ErrBadConfig; unknown fault targets wrap
// ErrUnknownComponent.
func NewSession(cut CUT, opts ...Option) (*Session, error) {
	var o sessionOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("repro: %w: negative worker count %d", ErrBadConfig, o.workers)
	}
	if err := cut.Validate(); err != nil {
		return nil, err
	}
	deviations := o.deviations
	if deviations == nil {
		deviations = fault.PaperDeviations()
	}
	components := o.components
	if components == nil {
		components = cut.Passives
	}
	u, err := fault.NewUniverse(components, deviations)
	if err != nil {
		return nil, err
	}
	if o.tolSamples != 0 || o.tolerance.Sigma != 0 {
		if o.tolerance.Sigma < 0 || o.tolerance.Sigma > 0.3 {
			return nil, fmt.Errorf("repro: %w: tolerance sigma %g outside [0, 0.3]", ErrBadConfig, o.tolerance.Sigma)
		}
		if o.tolSamples < 1 {
			return nil, fmt.Errorf("repro: %w: %d Monte-Carlo samples < 1", ErrBadConfig, o.tolSamples)
		}
	}
	if (o.noiseTempK != 0 || o.noiseENBW != 0) && (o.noiseTempK <= 0 || o.noiseENBW <= 0) {
		return nil, fmt.Errorf("repro: %w: measurement noise needs positive temperature and bandwidth, got %g K / %g Hz",
			ErrBadConfig, o.noiseTempK, o.noiseENBW)
	}
	if o.tolSeed == 0 {
		o.tolSeed = 1
	}
	// The stored CUT reflects the actual fault targets, so CUT().Passives
	// always names the universe the session diagnoses over.
	cut.Passives = append([]string(nil), u.Components...)
	s := &Session{
		cut: cut, workers: o.workers, progress: o.progress, tracer: o.tracer,
		tolerance: o.tolerance, tolSamples: o.tolSamples, tolSeed: o.tolSeed,
		noiseTempK: o.noiseTempK, noiseENBW: o.noiseENBW,
	}
	if o.doubleFaults {
		s.pairs, err = u.Pairs(nil, o.maxDoubles)
		if err != nil {
			return nil, fmt.Errorf("repro: %w: %v", ErrBadConfig, err)
		}
	}
	s.emit(Progress{Stage: StageDictionary, Completed: 0, Total: 1})
	start := time.Now()
	defer s.tracer.StartSpan("session.dictionary").End()
	atpg, err := core.New(cut.Circuit, cut.Source, cut.Output, u)
	if err != nil {
		return nil, err
	}
	s.atpg = atpg
	// The session's tracer propagates into the engine so fault-set
	// batches record their per-frequency columns on the same trace.
	if o.tracer != nil {
		atpg.Dictionary().Engine().SetTracer(o.tracer)
	}
	text, err := netlist.Serialize(cut.Circuit)
	if err != nil {
		return nil, fmt.Errorf("repro: checksum netlist: %w", err)
	}
	// The staleness fingerprint covers the whole measurement setup, not
	// just the topology: the same circuit observed at a different node or
	// over a different fault universe yields different artifacts. A
	// double-fault session appends its pair-universe size, so
	// single-fault artifacts keep their historical checksums and the two
	// universes never warm-start each other.
	fingerprint := fmt.Sprintf(
		"%s\nsource=%s\noutput=%s\ncomponents=%v\ndeviations=%v\n",
		text, cut.Source, cut.Output, u.Components, u.Deviations)
	if s.pairs != nil {
		fingerprint += fmt.Sprintf("doublefaults=%d\n", len(s.pairs))
	}
	s.checksum = artifact.Checksum(fingerprint)
	s.emit(Progress{Stage: StageDictionary, Completed: 1, Total: 1, ElapsedMS: msSince(start)})
	return s, nil
}

// msSince is the stage-timing unit used by Progress.ElapsedMS.
func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0)) / float64(time.Millisecond)
}

// NewSessionFromNetlist builds a session from netlist text plus the
// measurement metadata a netlist does not carry: the driving source and
// the observed output node. Fault targets default to every valued
// element; override with WithComponents.
func NewSessionFromNetlist(text, source, output string, opts ...Option) (*Session, error) {
	c, err := netlist.Parse(text)
	if err != nil {
		return nil, err
	}
	cut := CUT{
		Circuit:     c,
		Source:      source,
		Output:      output,
		Passives:    c.ValuedNames(),
		Omega0:      1,
		Description: "netlist-defined circuit under test",
	}
	if len(cut.Passives) == 0 {
		return nil, fmt.Errorf("repro: %w: netlist has no faultable components", ErrBadConfig)
	}
	return NewSession(cut, opts...)
}

// emit delivers one progress event to every subscriber. No lock is held
// while callbacks run — the subscriber list is immutable — so a callback
// may safely call back into the Session (e.g. kick off Trajectories when
// the optimize stage completes) without deadlocking.
func (s *Session) emit(ev Progress) {
	for _, fn := range s.progress {
		fn(ev)
	}
}

// CUT returns the session's circuit under test.
func (s *Session) CUT() CUT { return s.cut }

// Dictionary exposes the fault dictionary.
//
// The dictionary is safe for concurrent use: lazy response queries
// serialize only their memo bookkeeping behind an internal mutex, bulk
// signature computation (Signatures, UniverseSignatures, and the
// diagnose paths built on them) bypasses the memo into call-local
// scratch, and the batched engine draws per-worker workspaces from a
// sync.Pool. Any number of goroutines may query one dictionary — the
// contract the ftserve registry and micro-batcher rely on, pinned by the
// repository's -race hammer test.
func (s *Session) Dictionary() *Dictionary { return s.atpg.Dictionary() }

// ATPG exposes the underlying test generator for advanced use (baseline
// strategies, custom fitness modes).
func (s *Session) ATPG() *core.ATPG { return s.atpg }

// Checksum returns the SHA-256 (hex) fingerprint stamped into and
// verified against persisted artifacts. It covers the CUT's serialized
// netlist plus the measurement setup (source, output) and fault
// universe, so artifacts from a different board revision, observation
// node, or deviation grid are rejected as stale.
func (s *Session) Checksum() string { return s.checksum }

// Workers returns the session's configured worker bound (0 = one per
// CPU).
func (s *Session) Workers() int { return s.workers }

// Optimize searches for a test vector with the paper's GA. The context
// is enforced at every generation boundary and before each fitness
// evaluation: a canceled context returns an error wrapping ErrCanceled
// (and the context's own error) within one generation. Progress
// subscribers receive one StageOptimize event per generation carrying
// the generation's best fitness. When cfg.GA.Workers is 0, the session's
// WithWorkers bound applies.
func (s *Session) Optimize(ctx context.Context, cfg OptimizeConfig) (*TestVector, error) {
	if cfg.GA.Workers == 0 {
		cfg.GA.Workers = s.workers
	}
	total := cfg.GA.Generations
	start := time.Now()
	user := cfg.GA.Progress
	cfg.GA.Progress = func(st GenStats) {
		if user != nil {
			user(st)
		}
		s.emit(Progress{
			Stage:       StageOptimize,
			Completed:   st.Generation + 1,
			Total:       total,
			Generation:  st.Generation,
			BestFitness: st.Best,
			ElapsedMS:   msSince(start),
		})
	}
	defer s.tracer.StartSpan("session.optimize").End()
	return s.atpg.Optimize(ctx, cfg)
}

// Fitness evaluates the paper's fitness for an explicit test vector.
func (s *Session) Fitness(ctx context.Context, omegas []float64) (float64, error) {
	return s.atpg.Fitness(ctx, omegas, core.PaperFitness)
}

// buildMap constructs the session's trajectory map for a test vector:
// the single-fault map, extended with one sweep-line family per modeled
// double fault when WithDoubleFaults is set.
func (s *Session) buildMap(ctx context.Context, omegas []float64) (*TrajectoryMap, error) {
	if s.pairs != nil {
		return trajectory.BuildPairs(ctx, s.atpg.Dictionary(), omegas, s.pairs)
	}
	return trajectory.Build(ctx, s.atpg.Dictionary(), omegas)
}

// Trajectories builds the trajectory map for a test vector — including
// the double-fault sweep families when the session was opened
// WithDoubleFaults. A canceled context returns an error wrapping
// ErrCanceled within one frequency.
func (s *Session) Trajectories(ctx context.Context, omegas []float64) (*TrajectoryMap, error) {
	s.emit(Progress{Stage: StageTrajectories, Completed: 0, Total: 1})
	start := time.Now()
	defer s.tracer.StartSpan("session.trajectories").End()
	m, err := s.buildMap(ctx, omegas)
	if err != nil {
		return nil, err
	}
	s.emit(Progress{Stage: StageTrajectories, Completed: 1, Total: 1, ElapsedMS: msSince(start)})
	return m, nil
}

// Diagnoser builds the diagnosis stage for a test vector, over the same
// map Trajectories returns (double-fault families included when the
// session models them).
//
// A built Diagnoser is immutable and safe for concurrent read-only use:
// Diagnose, DiagnoseFault, DiagnoseFaults, DiagnoseSets, Extent and Map
// only read the trajectory map they were built over. Build one Diagnoser
// per test vector and share it across request-serving goroutines.
func (s *Session) Diagnoser(ctx context.Context, omegas []float64) (*Diagnoser, error) {
	defer s.tracer.StartSpan("session.diagnoser").End()
	m, err := s.buildMap(ctx, omegas)
	if err != nil {
		return nil, err
	}
	return diagnosis.New(m)
}

// DiagnoseFaults computes the signatures of every given fault in one
// batched solve at the diagnoser's test vector and diagnoses each,
// returning results aligned with the input — the bulk, shared-read
// diagnose entry point a serving layer coalesces concurrent requests
// onto. It is safe to call from any number of goroutines sharing one
// Session and Diagnoser, and a batched call is bit-identical to the same
// faults diagnosed one at a time. A canceled context returns an error
// wrapping ErrCanceled within one frequency.
func (s *Session) DiagnoseFaults(ctx context.Context, dg *Diagnoser, faults []Fault) ([]*DiagnosisResult, error) {
	return dg.DiagnoseFaults(ctx, s.Dictionary(), faults)
}

// DiagnoseFaultSets is DiagnoseFaults over arbitrary fault sets —
// golden, single, and multiple faults freely mixed in one batched rank-k
// solve. The concurrency and batched-equals-serial contracts of
// DiagnoseFaults apply unchanged; this is the entry point the serving
// layer routes {"faults": [...]} injections through.
func (s *Session) DiagnoseFaultSets(ctx context.Context, dg *Diagnoser, sets []FaultSet) ([]*DiagnosisResult, error) {
	return dg.DiagnoseSets(ctx, s.Dictionary(), sets)
}

// Evaluate runs the hold-out evaluation: off-grid deviations (nil → the
// default ±15/25/35% set) on every universe component, diagnosed
// against the session's map (double-fault families included when
// modeled). A canceled context returns an error wrapping ErrCanceled
// within one frequency batch.
func (s *Session) Evaluate(ctx context.Context, omegas []float64, holdOut []float64) (*Evaluation, error) {
	if holdOut == nil {
		holdOut = diagnosis.DefaultHoldOutDeviations()
	}
	s.emit(Progress{Stage: StageEvaluate, Completed: 0, Total: 1})
	start := time.Now()
	defer s.tracer.StartSpan("session.evaluate").End()
	var ev *Evaluation
	var err error
	if s.pairs == nil {
		ev, err = s.atpg.EvaluateVector(ctx, omegas, holdOut)
	} else {
		var dg *Diagnoser
		dg, err = s.Diagnoser(ctx, omegas)
		if err != nil {
			return nil, err
		}
		ev, err = dg.Evaluate(ctx, s.Dictionary(), diagnosis.HoldOutTrials(s.Universe(), holdOut))
	}
	if err != nil {
		return nil, err
	}
	s.emit(Progress{Stage: StageEvaluate, Completed: 1, Total: 1, ElapsedMS: msSince(start)})
	return ev, nil
}

// EvaluateSets runs a hold-out evaluation over explicit fault-set
// trials (see Diagnoser.EvaluateSets for the scoring contract) against
// an already-built Diagnoser — build one with Diagnoser and share it
// across evaluations and serving, so the trajectory map (expensive for
// double-fault sessions) is constructed once. Combined with
// HoldOutDoubleFaults it measures how well a double-fault session names
// injected double faults.
func (s *Session) EvaluateSets(ctx context.Context, dg *Diagnoser, trials []FaultSet) (*Evaluation, error) {
	s.emit(Progress{Stage: StageEvaluate, Completed: 0, Total: 1})
	start := time.Now()
	defer s.tracer.StartSpan("session.evaluate").End()
	ev, err := dg.EvaluateSets(ctx, s.Dictionary(), trials)
	if err != nil {
		return nil, err
	}
	s.emit(Progress{Stage: StageEvaluate, Completed: 1, Total: 1, ElapsedMS: msSince(start)})
	return ev, nil
}

// DoubleFaults returns the session's modeled double-fault universe (nil
// unless WithDoubleFaults was set). The slice is shared; treat it as
// read-only.
func (s *Session) DoubleFaults() []MultiFault { return s.pairs }

// Universe returns the session's single-fault universe.
func (s *Session) Universe() *Universe { return s.atpg.Dictionary().Universe() }

// HoldOutDoubleFaults builds double-fault trials off the modeled grid:
// every component pair swept over the hold-out deviations (nil → the
// default ±15/25/35% set), capped at max sets (≤ 0 → no cap).
func (s *Session) HoldOutDoubleFaults(holdOut []float64, max int) ([]FaultSet, error) {
	return diagnosis.HoldOutPairTrials(s.Universe(), holdOut, max)
}

// Precompute fills the dictionary's response memo on a frequency grid
// with the session's worker bound, streaming one StageDictionary event
// per solved frequency. Subsequent responses at grid points are pure
// lookups; SaveDictionary calls this before snapshotting.
func (s *Session) Precompute(ctx context.Context, omegas []float64) error {
	start := time.Now()
	defer s.tracer.StartSpan("session.precompute").End()
	return s.Dictionary().BuildGridProgress(ctx, omegas, s.workers, func(done, total int) {
		s.emit(Progress{Stage: StageDictionary, Completed: done, Total: total, ElapsedMS: msSince(start)})
	})
}

// DiagnoseCircuit diagnoses an arbitrary variant of the CUT (a multiple
// fault, a tolerance-perturbed board — anything with the same source and
// output) against the trajectory map for the given test vector. The
// boolean reports whether the result should be rejected as out-of-model
// at the given rejection ratio (0 disables rejection).
func (s *Session) DiagnoseCircuit(ctx context.Context, variant *Circuit, omegas []float64, rejectRatio float64) (*DiagnosisResult, bool, error) {
	dg, err := s.Diagnoser(ctx, omegas)
	if err != nil {
		return nil, false, err
	}
	sig, err := s.Dictionary().CircuitSignature(variant, omegas)
	if err != nil {
		return nil, false, err
	}
	res, err := dg.Diagnose(geometry.VecN(sig))
	if err != nil {
		return nil, false, err
	}
	rejected := false
	if rejectRatio > 0 {
		rejected = res.Rejected(dg.Extent(), rejectRatio)
	}
	return res, rejected, nil
}

// FitTransfer recovers the CUT's transfer function N(s)/D(s) from
// sampled AC analysis (degrees chosen by the caller; see
// analysis.FitRational). It hands downstream users poles, zeros and
// filter parameters without symbolic analysis.
func (s *Session) FitTransfer(numDeg, denDeg int, omegas []float64) (Rational, error) {
	ac, err := analysis.NewAC(s.Dictionary().Golden())
	if err != nil {
		return Rational{}, err
	}
	return ac.FitRational(s.cut.Source, s.cut.Output, numDeg, denDeg, omegas)
}

// Tolerance returns the session's tolerance model and Monte-Carlo
// sample count; samples is 0 when the session has none (no
// WithTolerance).
func (s *Session) Tolerance() (tol Tolerance, samples int) {
	return s.tolerance, s.tolSamples
}

// Clouds builds the Monte-Carlo signature-cloud model for the given
// test vector: one cloud per fault set in the modeled universe
// (double-fault pairs included when WithDoubleFaults is set), each
// sampled tolSamples times with every component perturbed at the
// session's tolerance σ — one rank-k batched engine pass per sample,
// fanned out over the session's worker pool. When WithMeasurementNoise
// is set, the output-referred noise σ per frequency is derived from
// the engine's thermal-noise PSDs and folded into the model.
//
// Requires WithTolerance; deterministic for a fixed WithToleranceSeed
// at every worker count. Streams StageClouds progress events.
func (s *Session) Clouds(ctx context.Context, omegas []float64) (*SignatureClouds, error) {
	if s.tolSamples == 0 {
		return nil, fmt.Errorf("repro: %w: session has no tolerance model (use WithTolerance)", ErrBadConfig)
	}
	s.emit(Progress{Stage: StageClouds, Completed: 0, Total: 1})
	start := time.Now()
	defer s.tracer.StartSpan("session.clouds").End()
	cfg := probdiag.Config{
		Sigma:   s.tolerance.Sigma,
		Samples: s.tolSamples,
		Seed:    s.tolSeed,
		Workers: s.workers,
	}
	if s.noiseTempK > 0 {
		sigmas, err := s.measurementNoiseSigmas(ctx, omegas)
		if err != nil {
			return nil, err
		}
		cfg.NoiseSigma = sigmas
	}
	var extra []fault.Set
	for _, p := range s.pairs {
		extra = append(extra, p)
	}
	cs, err := probdiag.Build(ctx, s.Dictionary(), omegas, extra, cfg)
	if err != nil {
		return nil, err
	}
	s.emit(Progress{Stage: StageClouds, Completed: 1, Total: 1, ElapsedMS: msSince(start)})
	return cs, nil
}

// measurementNoiseSigmas converts the engine's thermal output-noise
// PSDs into signature-space standard deviations: σ_j =
// √(PSD_j·ENBW)/|amp| — an RMS noise voltage normalized the same way
// the engine normalizes every response magnitude.
func (s *Session) measurementNoiseSigmas(ctx context.Context, omegas []float64) ([]float64, error) {
	eng := s.Dictionary().Engine()
	psd, err := eng.OutputNoisePSD(ctx, omegas, s.noiseTempK)
	if err != nil {
		return nil, err
	}
	amp := eng.SourceAmplitude()
	sigmas := make([]float64, len(psd))
	for j, p := range psd {
		sigmas[j] = math.Sqrt(p*s.noiseENBW) / amp
	}
	return sigmas, nil
}

// DiagnoseProbabilistic scores an observed fault-space point against a
// cloud model built by Clouds (or loaded by LoadClouds): Gaussian
// log-likelihood per fault hypothesis, posterior probabilities,
// confidence, and the winner's ambiguity group. The diagnoser only
// contributes its frequency grid for dimensional checks — the
// nearest-signature Diagnose path is untouched.
func (s *Session) DiagnoseProbabilistic(dg *Diagnoser, clouds *SignatureClouds, point []float64) (*ProbabilisticResult, error) {
	return dg.DiagnoseProbabilistic(clouds, geometry.VecN(point))
}

// NewDiagnoser builds a Diagnoser directly from a trajectory map — the
// deployment path for maps loaded from artifacts (LoadTrajectories),
// where no simulator or dictionary is needed.
func NewDiagnoser(m *TrajectoryMap) (*Diagnoser, error) { return diagnosis.New(m) }

// TrajectoriesFromExport reconstructs a trajectory map from a persisted
// dictionary grid alone, interpolating in log ω between grid points. At
// exact grid frequencies the result is bit-for-bit the stored response.
func TrajectoriesFromExport(ex *DictionaryExport, omegas []float64) (*TrajectoryMap, error) {
	return trajectory.BuildFromExport(ex, omegas)
}
