//go:build race

package repro

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count assertions are meaningless under it.
const raceEnabled = true
