#!/usr/bin/env bash
# loadgen.sh — drive N concurrent diagnose requests at a running ftserve
# for local throughput checks of the micro-batching scheduler.
#
# Usage:
#   scripts/loadgen.sh [URL] [REQUESTS] [CONCURRENCY] [CUT]
#
# Defaults: URL=http://localhost:8080, REQUESTS=256, CONCURRENCY=32,
# CUT=nf-lowpass-7. Requires curl. Exits non-zero if any request fails.
#
# Quickstart:
#   go run ./cmd/ftserve -addr :8080 -cuts nf-lowpass-7 -freqs 0.56,4.55 &
#   scripts/loadgen.sh
#
# After the run the script scrapes /metrics and reports the realized
# coalescing factor (batched_requests_total / batches_total) and the
# server-side p50/p99 request latency from the
# ftserve_request_seconds histogram.
set -euo pipefail

URL="${1:-http://localhost:8080}"
REQUESTS="${2:-256}"
CONCURRENCY="${3:-32}"
CUT="${4:-nf-lowpass-7}"

command -v curl >/dev/null || { echo "loadgen: curl not found" >&2; exit 1; }

# Rotate faults across components and deviations so batches mix work.
COMPONENTS=(R1 R2 R3 R4 C1 C2 C3)
DEVIATIONS=(0.25 -0.30 0.17 -0.13 0.31)

fail_log="$(mktemp)"
trap 'rm -f "$fail_log"' EXIT

one_request() {
  local i="$1"
  local comp="${COMPONENTS[$((i % ${#COMPONENTS[@]}))]}"
  local dev="${DEVIATIONS[$((i % ${#DEVIATIONS[@]}))]}"
  local code
  code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$URL/v1/diagnose" \
    -H 'Content-Type: application/json' \
    -d "{\"cut\":\"$CUT\",\"fault\":{\"component\":\"$comp\",\"deviation\":$dev}}")
  if [ "$code" != "200" ]; then
    echo "request $i ($comp@$dev): HTTP $code" >>"$fail_log"
  fi
}

echo "loadgen: $REQUESTS requests, $CONCURRENCY concurrent, CUT=$CUT, URL=$URL"
start=$(date +%s.%N 2>/dev/null || date +%s)

active=0
for ((i = 0; i < REQUESTS; i++)); do
  one_request "$i" &
  active=$((active + 1))
  if ((active >= CONCURRENCY)); then
    wait -n 2>/dev/null || wait
    active=$((active - 1))
  fi
done
wait

end=$(date +%s.%N 2>/dev/null || date +%s)
elapsed=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.2f", b - a }')
rps=$(awk -v n="$REQUESTS" -v t="$elapsed" 'BEGIN { if (t > 0) printf "%.0f", n / t; else print "inf" }')

if [ -s "$fail_log" ]; then
  failures=$(wc -l <"$fail_log")
  echo "loadgen: $failures/$REQUESTS requests FAILED:" >&2
  head -5 "$fail_log" >&2
  exit 1
fi
echo "loadgen: $REQUESTS/$REQUESTS ok in ${elapsed}s (~$rps req/s)"

# Post-run observability scrape: coalescing factor and server-side
# request-latency quantiles, straight from the Prometheus payload.
metrics=$(curl -s "$URL/metrics") || { echo "loadgen: /metrics scrape failed" >&2; exit 1; }
echo "$metrics" | awk '
  $1 == "ftserve_batches_total"          { batches = $2 }
  $1 == "ftserve_batched_requests_total" { batched = $2 }
  /^ftserve_request_seconds_bucket\{le="[^+]/ {
    le = $1
    sub(/^ftserve_request_seconds_bucket\{le="/, "", le)
    sub(/"\}$/, "", le)
    n += 1; les[n] = le + 0; counts[n] = $2 + 0
  }
  $1 == "ftserve_request_seconds_count" { total = $2 + 0 }
  function quantile(p,   rank, i, lo, hi, prevc, prevle) {
    if (total == 0) return 0
    rank = p * total
    prevc = 0; prevle = 0
    for (i = 1; i <= n; i++) {
      if (counts[i] >= rank) {
        lo = prevle; hi = les[i]
        if (counts[i] == prevc) return hi
        return lo + (hi - lo) * (rank - prevc) / (counts[i] - prevc)
      }
      prevc = counts[i]; prevle = les[i]
    }
    return les[n]  # rank fell in the +Inf bucket: clamp to the last bound
  }
  END {
    if (batches > 0)
      printf "loadgen: coalescing factor %.2f (%d requests / %d batches)\n",
        batched / batches, batched, batches
    printf "loadgen: request latency p50 %.3f ms, p99 %.3f ms (server-side, %d samples)\n",
      1000 * quantile(0.50), 1000 * quantile(0.99), total
  }'
