#!/usr/bin/env bash
# benchcompare.sh — benchmark two git refs and compare with benchstat.
#
# Usage:
#   scripts/benchcompare.sh [OLD_REF] [NEW_REF] [BENCH_REGEX] [COUNT]
#
# Defaults: OLD_REF=main, NEW_REF=HEAD (or the working tree when NEW_REF
# is the literal string "worktree"), BENCH_REGEX='.', COUNT=5.
#
# Each ref is benchmarked in a detached git worktree so the current
# checkout is never disturbed. Outputs land in bench-out/<ref>.txt and
# are compared with benchstat when available; otherwise the raw files
# are left for manual inspection (install benchstat with
# `go install golang.org/x/perf/cmd/benchstat@latest`).
set -euo pipefail

old_ref=${1:-main}
new_ref=${2:-HEAD}
pattern=${3:-.}
count=${4:-5}

root=$(git rev-parse --show-toplevel)
out_dir=$root/bench-out
mkdir -p "$out_dir"

bench_ref() {
    local ref=$1 out=$2
    if [ "$ref" = worktree ]; then
        echo ">> benchmarking working tree -> $out" >&2
        (cd "$root" && go test -run '^$' -bench "$pattern" -benchmem -count "$count" .) >"$out"
        return
    fi
    local tmp
    tmp=$(mktemp -d)
    trap 'git -C "$root" worktree remove --force "$tmp" >/dev/null 2>&1 || true; rm -rf "$tmp"' RETURN
    echo ">> benchmarking $ref -> $out" >&2
    git -C "$root" worktree add --detach "$tmp" "$ref" >/dev/null
    (cd "$tmp" && go test -run '^$' -bench "$pattern" -benchmem -count "$count" .) >"$out"
}

old_out=$out_dir/$(echo "$old_ref" | tr '/' '_').txt
new_out=$out_dir/$(echo "$new_ref" | tr '/' '_').txt

bench_ref "$old_ref" "$old_out"
bench_ref "$new_ref" "$new_out"

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$old_out" "$new_out"
else
    echo "benchstat not found; raw outputs:"
    echo "  old: $old_out"
    echo "  new: $new_out"
    echo "install it with: go install golang.org/x/perf/cmd/benchstat@latest"
fi
