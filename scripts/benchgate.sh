#!/usr/bin/env bash
# benchgate.sh — regression gate over the tracked hot-path and sparse
# benchmarks.
#
# Usage:
#   scripts/benchgate.sh [BASELINE_JSON] [TOLERANCE] [SPARSE_BASELINE] [SPARSE_TOLERANCE]
#
# Defaults: BASELINE_JSON=BENCH_hotpath.json (the checked-in record),
# TOLERANCE=0.10 (10% slower than baseline fails),
# SPARSE_BASELINE=BENCH_sparse.json, SPARSE_TOLERANCE=0.30.
#
# Runs `ftbench -e hotpath` on the working tree, writes the fresh report
# to bench-out/hotpath-gate.json, and fails when fitness_eval or
# trajectory_build regress past the tolerance or the fitness path
# allocates. The checked-in baseline and a CI runner are different
# machines, so the tolerance compares like-for-like only when the
# baseline was produced on the same runner class — for cross-machine
# runs, pass a baseline produced with `ftbench -e hotpath` on the same
# host (see .github/workflows/ci.yml, which measures its own baseline
# from the merge base).
#
# Then runs `ftbench -e sparse` gated against the checked-in
# BENCH_sparse.json. The sparse gate compares speedup ratios, not
# ns/op, so the checked-in baseline works across machines; the looser
# default tolerance absorbs shared-runner variance. Hard floors
# enforced regardless of tolerance: sparse wins ≥5× over dense at 256+
# unknowns (where dense is still timeable), and the frequency-blocked
# supernodal numeric phase never collapses below 2× over the scalar
# sparse refactorization at 2000+ unknowns (its blocked-vs-scalar
# ratio is additionally gated relative to the baseline; the ≥3×
# supernodal acceptance floor is asserted on the checked-in record by
# CI's invariant step). The parallel-refactorization speedup is
# asserted within tolerance of break-even only on multi-core runners
# (GOMAXPROCS=1 records no parallel measurement).
set -euo pipefail

baseline=${1:-BENCH_hotpath.json}
tol=${2:-0.10}
sparse_baseline=${3:-BENCH_sparse.json}
sparse_tol=${4:-0.30}

root=$(git rev-parse --show-toplevel)
out_dir=$root/bench-out
mkdir -p "$out_dir"

cd "$root"
go run ./cmd/ftbench -e hotpath \
    -hotpath-out "$out_dir/hotpath-gate.json" \
    -gate "$baseline" -gate-tol "$tol"

go run ./cmd/ftbench -e sparse \
    -sparse-out "$out_dir/sparse-gate.json" \
    -sparse-gate "$sparse_baseline" -gate-tol "$sparse_tol"
