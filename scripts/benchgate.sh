#!/usr/bin/env bash
# benchgate.sh — regression gate over the tracked hot-path benchmarks.
#
# Usage:
#   scripts/benchgate.sh [BASELINE_JSON] [TOLERANCE]
#
# Defaults: BASELINE_JSON=BENCH_hotpath.json (the checked-in record),
# TOLERANCE=0.10 (10% slower than baseline fails).
#
# Runs `ftbench -e hotpath` on the working tree, writes the fresh report
# to bench-out/hotpath-gate.json, and fails when fitness_eval or
# trajectory_build regress past the tolerance or the fitness path
# allocates. The checked-in baseline and a CI runner are different
# machines, so the tolerance compares like-for-like only when the
# baseline was produced on the same runner class — for cross-machine
# runs, pass a baseline produced with `ftbench -e hotpath` on the same
# host (see .github/workflows/ci.yml, which measures its own baseline
# from the merge base).
set -euo pipefail

baseline=${1:-BENCH_hotpath.json}
tol=${2:-0.10}

root=$(git rev-parse --show-toplevel)
out_dir=$root/bench-out
mkdir -p "$out_dir"

cd "$root"
go run ./cmd/ftbench -e hotpath \
    -hotpath-out "$out_dir/hotpath-gate.json" \
    -gate "$baseline" -gate-tol "$tol"
