// Benchmark harness: one testing.B benchmark per reproduced figure /
// experiment (see DESIGN.md's experiment index and EXPERIMENTS.md for
// the recorded results). `go test -bench=. -benchmem` regenerates the
// core quantities; `go run ./cmd/ftbench` prints the full tables.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/diagnosis"
	"repro/internal/dictionary"
	"repro/internal/fault"
	"repro/internal/numeric"
	"repro/internal/signal"
	"repro/internal/trajectory"
	"repro/internal/transient"
)

func mustPipeline(b *testing.B) *Pipeline {
	b.Helper()
	p, err := NewPipeline(PaperCUT(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// reducedGA keeps per-iteration cost sane while preserving the paper's
// operators; BenchmarkGAPaperParams runs the full configuration.
func reducedGA(seed int64) OptimizeConfig {
	cfg := PaperOptimizeConfig(1)
	cfg.GA.PopSize = 32
	cfg.GA.Generations = 10
	cfg.Seed = seed
	return cfg
}

// BenchmarkFig1Dictionary (E1): building the full fault dictionary grid
// — 56 faulty circuits plus golden across a 13-point frequency sweep.
// Each iteration needs a fresh pipeline (a warm dictionary would serve
// the grid from its memo), but pipeline construction happens with the
// timer stopped so only BuildGrid is measured.
func BenchmarkFig1Dictionary(b *testing.B) {
	grid := numeric.Logspace(0.01, 100, 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := mustPipeline(b)
		b.StartTimer()
		if err := p.Dictionary().BuildGrid(nil, grid, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Transform (E2): the curve-to-point transformation for one
// fault at a two-frequency test vector.
func BenchmarkFig2Transform(b *testing.B) {
	p := mustPipeline(b)
	d := p.Dictionary()
	f := Fault{Component: "R3", Deviation: 0.4}
	omegas := []float64{0.5, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Signature(f, omegas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Diagnosis (E3): one perpendicular-projection diagnosis of
// an off-grid fault against the 7-trajectory map.
func BenchmarkFig3Diagnosis(b *testing.B) {
	p := mustPipeline(b)
	dg, err := p.Diagnoser([]float64{0.5635, 4.5524})
	if err != nil {
		b.Fatal(err)
	}
	unknown := Fault{Component: "R3", Deviation: 0.25}
	sig, err := p.Dictionary().Signature(unknown, dg.Map().Omegas)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dg.Diagnose(sig)
		if err != nil {
			b.Fatal(err)
		}
		if res.Best().Component != "R3" {
			b.Fatalf("diagnosed %s", res.Best().Component)
		}
	}
}

// BenchmarkGAPaperParams (E4): the paper's full GA — 128 individuals,
// 15 generations, roulette wheel, fitness 1/(1+I).
func BenchmarkGAPaperParams(b *testing.B) {
	p := mustPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := PaperOptimizeConfig(1)
		cfg.Seed = int64(i + 1)
		tv, err := p.Optimize(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if tv.Fitness <= 0 {
			b.Fatal("GA found nothing")
		}
	}
}

// BenchmarkE5Accuracy: the hold-out evaluation (42 off-grid faults) for
// a fixed test vector — the cost of the accuracy numbers in E5's table.
func BenchmarkE5Accuracy(b *testing.B) {
	p := mustPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := p.Evaluate([]float64{0.5635, 4.5524}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if ev.Accuracy() < 0.9 {
			b.Fatalf("accuracy %g", ev.Accuracy())
		}
	}
}

// BenchmarkE5Baselines: the three baseline strategies at matched budget.
func BenchmarkE5Baselines(b *testing.B) {
	p := mustPipeline(b)
	atpg := p.ATPG()
	b.Run("random", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(int64(i)))
			if _, err := atpg.RandomVector(nil, 2, 0.01, 100, 50, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grid", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := atpg.GridVector(nil, 2, 0.01, 100, 12); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sensitivity", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := atpg.SensitivityVector(nil, 2, 0.01, 100, 12, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6Frequencies: GA optimization per test-vector size k.
func BenchmarkE6Frequencies(b *testing.B) {
	p := mustPipeline(b)
	for k := 1; k <= 4; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := reducedGA(int64(i + 1))
				cfg.NumFrequencies = k
				if _, err := p.Optimize(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7GA: GA operator ablation (selection methods).
func BenchmarkE7GA(b *testing.B) {
	p := mustPipeline(b)
	for _, sel := range []struct {
		name string
		set  func(*OptimizeConfig)
	}{
		{"roulette", func(c *OptimizeConfig) { c.GA.Selection = 0 }},
		{"tournament", func(c *OptimizeConfig) { c.GA.Selection = 1 }},
		{"rank", func(c *OptimizeConfig) { c.GA.Selection = 2 }},
	} {
		b.Run(sel.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := reducedGA(int64(i + 1))
				sel.set(&cfg)
				if _, err := p.Optimize(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitnessEval: one steady-state GA fitness evaluation — a
// trajectory.Builder rebuild plus the cached intersection count, the
// unit of work Optimize performs PopSize×Generations times. This is the
// path the reuse APIs (engine.BatchResponsesInto,
// dictionary.SignaturesInto, trajectory.Builder) keep allocation-free;
// TestFitnessPathAllocationFree guards the allocs/op reported here.
func BenchmarkFitnessEval(b *testing.B) {
	p := mustPipeline(b)
	bu := trajectory.NewBuilder(p.Dictionary())
	omegas := []float64{0.5, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary frequencies to defeat any value-keyed caching, as the GA
		// does.
		omegas[0] = 0.5 + float64(i%100)*1e-5
		omegas[1] = 2 + float64(i%100)*1e-5
		m, err := bu.Build(nil, omegas)
		if err != nil {
			b.Fatal(err)
		}
		if m.Intersections() < 0 {
			b.Fatal("negative intersection count")
		}
	}
}

// BenchmarkE8Noise: one full simulated bench measurement (multitone
// synthesis, noise, 12-bit ADC, two Goertzel extractions).
func BenchmarkE8Noise(b *testing.B) {
	gains := []complex128{complex(0.4, 0.1), complex(0.05, -0.02)}
	cfg := signal.DefaultMeasureConfig()
	omegas, err := signal.CoherentOmegas([]float64{0.56, 4.55}, cfg.SampleRate, cfg.Samples)
	if err != nil {
		b.Fatal(err)
	}
	cfg.SNRdB = 40
	cfg.ADCBits = 12
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signal.MeasureTones(gains, omegas, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Circuits: the whole pipeline (dictionary + reduced GA +
// hold-out evaluation) per benchmark CUT.
func BenchmarkE9Circuits(b *testing.B) {
	for _, cut := range Benchmarks() {
		b.Run(cut.Circuit.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p, err := NewPipeline(cut, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				cfg := reducedGA(int64(i + 1))
				cfg.BandLo, cfg.BandHi = cut.Omega0/100, cut.Omega0*100
				tv, err := p.Optimize(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.Evaluate(tv.Omegas, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchVsScalar: the batched engine against the seed's
// per-point solver on the same workload — the full paper universe (56
// faults + golden) across a 13-point grid. "scalar" clones, assembles
// and LU-factors one system per (fault, ω) pair (analyzer assembly
// amortized, as the seed's BuildGrid did); "batch" is Dictionary.BuildGrid
// on a fresh dictionary: one golden factorization per frequency plus
// rank-1 Sherman–Morrison updates per fault.
func BenchmarkBatchVsScalar(b *testing.B) {
	grid := numeric.Logspace(0.01, 100, 13)
	b.Run("scalar", func(b *testing.B) {
		d := mustPipeline(b).Dictionary()
		faults := append([]Fault{{}}, d.Universe().Faults()...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, f := range faults {
				for _, w := range grid {
					if _, err := d.ScalarResponse(f, w); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Fresh pipeline per iteration so BuildGrid computes instead
			// of hitting the memo; construction (including template
			// compilation) happens off the clock so the two sides time
			// the same work: filling the (fault × frequency) table.
			b.StopTimer()
			p := mustPipeline(b)
			b.StartTimer()
			if err := p.Dictionary().BuildGrid(nil, grid, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkACSolve: the innermost substrate cost — one MNA factor+solve
// of the paper CUT at one frequency.
func BenchmarkACSolve(b *testing.B) {
	d := mustPipeline(b).Dictionary()
	trials := diagnosis.HoldOutTrials(d.Universe(), []float64{0.17}) // unmemoized deviations
	_ = trials
	faults := d.Universe().Faults()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary ω so memoization never hits: measures true solve cost.
		w := 0.5 + float64(i%1000)*1e-6
		if _, err := d.Response(faults[i%len(faults)], w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrajectoryBuild: building the 7-component trajectory map for
// a fresh test vector (the GA's per-candidate cost).
func BenchmarkTrajectoryBuild(b *testing.B) {
	p := mustPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary frequencies to defeat memoization, as the GA does.
		w1 := 0.5 + float64(i%100)*1e-5
		w2 := 2.0 + float64(i%100)*1e-5
		if _, err := p.Trajectories([]float64{w1, w2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultUniverse: enumerating the paper's 56-fault universe.
func BenchmarkFaultUniverse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, err := fault.PaperUniverse(PaperCUT().Passives)
		if err != nil {
			b.Fatal(err)
		}
		if len(u.Faults()) != 56 {
			b.Fatal("universe size")
		}
	}
}

// BenchmarkE10Reject: one out-of-model rejection decision (diagnosis of
// a double-fault point plus the threshold test).
func BenchmarkE10Reject(b *testing.B) {
	p := mustPipeline(b)
	omegas := []float64{0.5, 2}
	dg, err := p.Diagnoser(omegas)
	if err != nil {
		b.Fatal(err)
	}
	m, err := fault.NewMulti(
		Fault{Component: "R1", Deviation: 0.4},
		Fault{Component: "C3", Deviation: -0.4},
	)
	if err != nil {
		b.Fatal(err)
	}
	double, err := m.Apply(p.Dictionary().Golden())
	if err != nil {
		b.Fatal(err)
	}
	sig, err := p.Dictionary().CircuitSignature(double, omegas)
	if err != nil {
		b.Fatal(err)
	}
	ext := dg.Extent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dg.Diagnose(sig)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Rejected(ext, 0.02)
	}
}

// BenchmarkE11Tolerance: one tolerance-perturbed board build + variant
// signature + diagnosis.
func BenchmarkE11Tolerance(b *testing.B) {
	p := mustPipeline(b)
	omegas := []float64{0.5, 2}
	if _, err := p.Diagnoser(omegas); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	tol := Tolerance{Sigma: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		board, err := tol.Perturb(p.Dictionary().Golden(), rng, "C2")
		if err != nil {
			b.Fatal(err)
		}
		if err := board.ScaleValue("C2", 1.25); err != nil {
			b.Fatal(err)
		}
		if _, _, err := p.DiagnoseCircuit(board, omegas, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Active: full pipeline over the macromodel CUT with 11
// fault targets (reduced GA).
func BenchmarkE12Active(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cut, err := PaperCUTMacro()
		if err != nil {
			b.Fatal(err)
		}
		p, err := NewPipeline(cut, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		cfg := reducedGA(int64(i + 1))
		if _, err := p.Optimize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientStep: cost of one simulated second of the paper CUT
// at 1 ms steps (the time-domain measurement path).
func BenchmarkTransientStep(b *testing.B) {
	cut := PaperCUT()
	wave := transient.Sine(1, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := transient.Run(cut.Circuit.Clone(), transient.Config{
			Step:     1e-3,
			Duration: 1,
			Sources:  map[string]transient.Waveform{cut.Source: wave},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFitRational: recovering the CUT's third-order transfer
// function from 21 AC samples.
func BenchmarkFitRational(b *testing.B) {
	p := mustPipeline(b)
	omegas := numeric.Logspace(0.02, 50, 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.FitTransfer(0, 3, omegas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiFaultBatchVsClones: the rank-k batched engine against
// per-pair full-LU clones on the paper CUT's double-fault universe
// (every component pair × paper deviations, 1344 pairs) across a
// 9-point grid. "clones" applies each pair to a circuit clone and fully
// solves per (pair, ω); "batch" is one BatchResponsesSetsInto pass —
// per frequency one golden LU, shared z-solves, and a 2×2 Woodbury
// capacitance solve per pair. `ftbench -e multifault` records the same
// comparison (cross-checked to 1e-9) into BENCH_multifault.json.
func BenchmarkMultiFaultBatchVsClones(b *testing.B) {
	s, err := NewSession(PaperCUT())
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := s.Universe().Pairs(nil, 0)
	if err != nil {
		b.Fatal(err)
	}
	sets := make([]FaultSet, len(pairs))
	for i, p := range pairs {
		sets[i] = p
	}
	grid := numeric.Logspace(0.01, 100, 9)
	b.Run("clones", func(b *testing.B) {
		golden := s.Dictionary().Golden()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				faulty, err := p.Apply(golden)
				if err != nil {
					b.Fatal(err)
				}
				sig, err := s.Dictionary().CircuitSignature(faulty, grid)
				if err != nil {
					b.Fatal(err)
				}
				if len(sig) != len(grid) {
					b.Fatal("short signature")
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var scratch dictionary.SignatureScratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Dictionary().SignaturesSetsInto(nil, sets, grid, &scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
