package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// ExampleNewSession demonstrates the v2 entry point: functional options,
// context threading, and the minimal diagnose flow with a fixed
// (pre-optimized) test vector.
func ExampleNewSession() {
	session, err := repro.NewSession(repro.PaperCUT(), repro.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	diagnoser, err := session.Diagnoser(ctx, []float64{0.56, 4.55})
	if err != nil {
		log.Fatal(err)
	}
	res, err := diagnoser.DiagnoseFault(session.Dictionary(),
		repro.Fault{Component: "R3", Deviation: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at %+.0f%%\n", res.Best().Component, res.Best().Deviation*100)
	// Output: R3 at +25%
}

// ExampleSession_Optimize runs a reduced GA under a context and reports
// the optimized test vector's quality.
func ExampleSession_Optimize() {
	session, err := repro.NewSession(repro.PaperCUT())
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.PaperOptimizeConfig(1) // ω0 = 1 for the normalized CUT
	cfg.GA.PopSize = 32
	cfg.GA.Generations = 10
	tv, err := session.Optimize(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d frequencies, I = %d, fitness %.2f\n",
		len(tv.Omegas), tv.Intersections, tv.Fitness)
	// Output: 2 frequencies, I = 0, fitness 1.00
}

// ExampleNewPipeline demonstrates the minimal end-to-end flow on the
// paper's circuit under test with a fixed (pre-optimized) test vector.
func ExampleNewPipeline() {
	pipeline, err := repro.NewPipeline(repro.PaperCUT(), nil)
	if err != nil {
		log.Fatal(err)
	}
	omegas := []float64{0.56, 4.55} // a known zero-intersection vector
	diagnoser, err := pipeline.Diagnoser(omegas)
	if err != nil {
		log.Fatal(err)
	}
	res, err := diagnoser.DiagnoseFault(pipeline.Dictionary(),
		repro.Fault{Component: "R3", Deviation: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at %+.0f%%\n", res.Best().Component, res.Best().Deviation*100)
	// Output: R3 at +25%
}

// ExampleParseNetlist shows the SPICE-subset parser.
func ExampleParseNetlist() {
	c, err := repro.ParseNetlist(`rc lowpass
V1 in 0 1
R1 in out 4.7k
C1 out 0 100n
.end
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Name(), len(c.Elements()))
	// Output: rc lowpass 3
}

// ExamplePipeline_Fitness evaluates the paper's fitness 1/(1+I) for an
// explicit frequency pair.
func ExamplePipeline_Fitness() {
	pipeline, err := repro.NewPipeline(repro.PaperCUT(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := pipeline.Fitness([]float64{0.56, 4.55})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f\n", fit)
	// Output: 1.00
}

// ExampleFault_ID shows the paper-style fault identifiers.
func ExampleFault_ID() {
	fmt.Println(repro.Fault{Component: "C2", Deviation: -0.4}.ID())
	fmt.Println(repro.Fault{}.ID())
	// Output:
	// C2@-40%
	// golden
}
