package repro

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ga"
	"repro/internal/trajectory"
)

// TestFitnessPathAllocationFree is the steady-state allocation
// regression guard for the GA's hot loop: once a trajectory.Builder is
// warm, rebuilding the map for a fresh test vector and counting its
// intersections must not allocate. A regression here silently multiplies
// back into hundreds of thousands of allocations per GA run (128
// individuals × 15 generations), which is exactly what the
// engine/dictionary/trajectory reuse APIs exist to prevent.
func TestFitnessPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless")
	}
	s, err := NewSession(PaperCUT())
	if err != nil {
		t.Fatal(err)
	}
	b := trajectory.NewBuilder(s.Dictionary())
	omegas := []float64{0.5, 2}
	eval := func() {
		m, err := b.Build(nil, omegas)
		if err != nil {
			t.Fatal(err)
		}
		if n := m.Intersections(); n < 0 {
			t.Fatal("negative intersection count")
		}
	}
	// Warm up the builder's scratch, then vary the test vector per run so
	// nothing can hide behind value-keyed caching.
	eval()
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		i++
		omegas[0] = 0.5 + float64(i%100)*1e-5
		omegas[1] = 2 + float64(i%100)*1e-5
		eval()
	})
	// A strict 0 would flake when the GC empties the engine's workspace
	// pool mid-measurement; anything under one allocation per evaluation
	// still proves the steady state reuses its storage.
	if avg >= 1 {
		t.Fatalf("fitness path allocates %.2f objects/run in steady state, want < 1", avg)
	}
}

// TestOptimizeBatchedMatchesPerIndividualGA: ATPG.Optimize evaluates
// fitness through the generation-batched hook with per-worker builders;
// this pins it bit-for-bit against an independently-assembled
// per-individual GA over the same objective (the paper's 1/(1+I)), for
// the same seed.
func TestOptimizeBatchedMatchesPerIndividualGA(t *testing.T) {
	s, err := NewSession(PaperCUT())
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperOptimizeConfig(s.CUT().Omega0)
	cfg.GA.PopSize, cfg.GA.Generations = 24, 6
	cfg.Seed = 17
	tv, err := s.Optimize(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	lo, hi := math.Log10(cfg.BandLo), math.Log10(cfg.BandHi)
	bounds := make([]ga.Interval, cfg.NumFrequencies)
	for i := range bounds {
		bounds[i] = ga.Interval{Lo: lo, Hi: hi}
	}
	problem := ga.Problem{
		Bounds: bounds,
		Fitness: func(genes []float64) float64 {
			omegas := make([]float64, len(genes))
			for i, g := range genes {
				omegas[i] = math.Pow(10, g)
			}
			m, err := trajectory.Build(nil, s.Dictionary(), omegas)
			if err != nil {
				return 0
			}
			return 1 / (1 + float64(m.Intersections()))
		},
	}
	res, err := ga.Run(nil, problem, cfg.GA, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	if tv.Fitness != res.BestFitness || tv.Evaluations != res.Evaluations {
		t.Fatalf("batched (fit %v, %d evals) != per-individual (fit %v, %d evals)",
			tv.Fitness, tv.Evaluations, res.BestFitness, res.Evaluations)
	}
	if !reflect.DeepEqual(tv.History, res.History) {
		t.Fatal("batched and per-individual GA histories differ")
	}
	want := make([]float64, len(res.Best))
	for i, g := range res.Best {
		want[i] = math.Pow(10, g)
	}
	for _, w := range want {
		found := false
		for _, o := range tv.Omegas {
			if o == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("best vectors differ: %v vs (unsorted) %v", tv.Omegas, want)
		}
	}
}

// TestOptimizeWorkerCountInvariance: fixed-seed GA results (best genes,
// fitness, full history) must be identical at every worker count,
// including the inline Workers==1 path.
func TestOptimizeWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *TestVector {
		s, err := NewSession(PaperCUT(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		cfg := PaperOptimizeConfig(s.CUT().Omega0)
		cfg.GA.PopSize, cfg.GA.Generations = 32, 6
		cfg.Seed = 23
		tv, err := s.Optimize(nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tv
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d changed the fixed-seed result:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}
