package repro

import (
	"math"
	"strings"
	"testing"
)

func TestPaperCUT(t *testing.T) {
	cut := PaperCUT()
	if len(cut.Passives) != 7 {
		t.Fatalf("paper CUT has %d passives, want 7", len(cut.Passives))
	}
	if err := cut.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBenchmarksAll(t *testing.T) {
	bs := Benchmarks()
	if len(bs) < 5 {
		t.Fatalf("only %d benchmarks", len(bs))
	}
	for _, b := range bs {
		if _, err := BenchmarkByName(b.Circuit.Name()); err != nil {
			t.Errorf("%s: %v", b.Circuit.Name(), err)
		}
	}
	if _, err := BenchmarkByName("no-such-cut"); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}

func TestPaperConstants(t *testing.T) {
	if len(PaperDeviations()) != 8 {
		t.Fatal("paper deviations wrong")
	}
	g := PaperGAConfig()
	if g.PopSize != 128 || g.Generations != 15 {
		t.Fatal("paper GA config wrong")
	}
	oc := PaperOptimizeConfig(1)
	if oc.NumFrequencies != 2 {
		t.Fatal("paper optimize config wrong")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p, err := NewPipeline(PaperCUT(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.CUT().Circuit.Name() != "nf-lowpass-7" {
		t.Fatal("CUT accessor wrong")
	}
	// A reduced GA run end to end.
	cfg := PaperOptimizeConfig(p.CUT().Omega0)
	cfg.GA.PopSize = 20
	cfg.GA.Generations = 5
	tv, err := p.Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Omegas) != 2 {
		t.Fatalf("test vector = %v", tv.Omegas)
	}
	fit, err := p.Fitness(tv.Omegas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit-1/(1+float64(tv.Intersections))) > 1e-12 {
		t.Fatalf("fitness mismatch: %g vs I=%d", fit, tv.Intersections)
	}
	m, err := p.Trajectories(tv.Omegas)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Trajectories) != 7 {
		t.Fatalf("trajectories = %d", len(m.Trajectories))
	}
	dg, err := p.Diagnoser(tv.Omegas)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dg.DiagnoseFault(p.Dictionary(), Fault{Component: "R2", Deviation: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best().Component == "" {
		t.Fatal("no diagnosis")
	}
	ev, err := p.Evaluate(tv.Omegas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Total != 42 {
		t.Fatalf("default hold-out = %d trials", ev.Total)
	}
	if p.ATPG() == nil {
		t.Fatal("ATPG accessor nil")
	}
}

func TestNewPipelineRejectsBadCUT(t *testing.T) {
	cut := PaperCUT()
	cut.Source = "missing"
	if _, err := NewPipeline(cut, nil); err == nil {
		t.Fatal("bad CUT accepted")
	}
	cut = PaperCUT()
	if _, err := NewPipeline(cut, []float64{0}); err == nil {
		t.Fatal("zero deviation accepted")
	}
}

func TestNetlistRoundTripAPI(t *testing.T) {
	text := `api test
V1 in 0 1
R1 in out 1k
C1 out 0 1u
.end
`
	c, err := ParseNetlist(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := SerializeNetlist(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(back, "R1 in out 1k") {
		t.Fatalf("serialized:\n%s", back)
	}
}

func TestNewPipelineFromNetlist(t *testing.T) {
	text := `netlist cut
V1 in 0 1
R1 in out 1k
C1 out 0 1u
`
	p, err := NewPipelineFromNetlist(text, "V1", "out", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// R1 and C1 are the faultable components.
	if got := len(p.CUT().Passives); got != 2 {
		t.Fatalf("passives = %d", got)
	}
	ev, err := p.Evaluate([]float64{300, 3000}, []float64{-0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy() < 0.5 {
		t.Fatalf("RC accuracy = %g", ev.Accuracy())
	}
	// Errors surface.
	if _, err := NewPipelineFromNetlist("garbage", "V1", "out", nil, nil); err == nil {
		t.Fatal("garbage netlist accepted")
	}
	if _, err := NewPipelineFromNetlist(text, "V9", "out", nil, nil); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := NewPipelineFromNetlist("t\nV1 a 0 1\nU1 a 0 b\nR1 b a 1\n", "V1", "b", []string{}, nil); err == nil {
		t.Fatal("empty component list accepted")
	}
}
