package repro

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the library release every binary reports through its
// -version flag, so deployed instances (an ftserve replica, a tester's
// ftdiag) are identifiable. Bump it once per release, not per commit —
// the VCS revision in VersionString pins the exact build.
const Version = "0.4.0"

// VersionString renders the one-line build identification for a binary:
// name, library version, Go toolchain, and — when the binary was built
// inside a VCS checkout — the revision and dirty flag stamped by the Go
// toolchain.
func VersionString(binary string) string {
	s := fmt.Sprintf("%s %s (%s %s/%s)", binary, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, kv := range info.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				if kv.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			s += fmt.Sprintf(" rev %s%s", rev, dirty)
		}
	}
	return s
}
